"""Unit tests for exact (noiseless) unitary equivalence checking."""

import math

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.core import check_unitary_equivalence, unitary_equivalent
from repro.library import qft
from repro.noise import bit_flip


class TestEquivalentPairs:
    def test_identical_circuits(self):
        circuit = qft(4)
        result = check_unitary_equivalence(circuit, circuit)
        assert result.equivalent
        assert np.isclose(result.trace_ratio, 1.0)
        assert np.isclose(result.fidelity, 1.0)

    def test_global_phase_ignored(self):
        a = QuantumCircuit(1).rz(math.pi, 0)  # e^{-i pi/2} Z
        b = QuantumCircuit(1).z(0)
        assert unitary_equivalent(a, b)

    def test_different_decompositions(self):
        # H = e^{i pi/2} Rz(pi/2) Rx(pi/2) Rz(pi/2)  up to phase.
        a = QuantumCircuit(1).h(0)
        b = QuantumCircuit(1)
        b.rz(math.pi / 2, 0).rx(math.pi / 2, 0).rz(math.pi / 2, 0)
        assert unitary_equivalent(a, b)

    def test_commuted_gates(self):
        a = QuantumCircuit(2).z(0).cx(0, 1)
        b = QuantumCircuit(2).cx(0, 1).z(0)  # Z on control commutes
        assert unitary_equivalent(a, b)

    def test_swap_as_three_cx(self):
        a = QuantumCircuit(2).swap(0, 1)
        b = QuantumCircuit(2).cx(0, 1).cx(1, 0).cx(0, 1)
        assert unitary_equivalent(a, b)

    def test_miter_cancellation_shortcut(self):
        """Equal circuits should need almost no contraction work."""
        circuit = qft(5)
        result = check_unitary_equivalence(circuit, circuit)
        assert result.equivalent
        assert result.stats.max_nodes <= 4


class TestInequivalentPairs:
    def test_extra_gate_detected(self):
        a = qft(3)
        b = qft(3).x(0)
        result = check_unitary_equivalence(a, b)
        assert not result.equivalent
        assert result.trace_ratio < 1.0

    def test_near_miss_quantified(self):
        a = QuantumCircuit(1)
        b = QuantumCircuit(1).rz(0.01, 0)
        result = check_unitary_equivalence(a, b)
        assert not result.equivalent
        assert result.fidelity > 0.999  # tiny rotation, tiny infidelity

    def test_fidelity_matches_dense(self):
        a = qft(2)
        b = qft(2).t(1)
        result = check_unitary_equivalence(a, b)
        ua, ub = a.to_matrix(), b.to_matrix()
        expected = abs(np.trace(ua.conj().T @ ub)) ** 2 / 16
        assert np.isclose(result.fidelity, expected, atol=1e-9)


class TestValidation:
    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            check_unitary_equivalence(qft(2), qft(3))

    def test_noisy_circuit_rejected(self):
        noisy = QuantumCircuit(1)
        noisy.append(bit_flip(0.9), [0])
        with pytest.raises(ValueError):
            check_unitary_equivalence(QuantumCircuit(1), noisy)

    def test_without_optimisations(self):
        circuit = qft(3)
        result = check_unitary_equivalence(
            circuit, circuit, use_local_optimisations=False
        )
        assert result.equivalent
