"""Unit tests for stats aggregation and worker-transport serialisation."""

import pickle

import pytest

from repro.core import CheckConfig, CheckError, CheckResult, CheckSession, RunStats
from repro.library import qft
from repro.noise import insert_random_noise
from repro.tensornet import build_plan
from repro.core.miter import algorithm_network


def checked_result() -> CheckResult:
    ideal = qft(3)
    noisy = insert_random_noise(ideal, 2, seed=0)
    return CheckSession(CheckConfig(epsilon=0.05)).check(ideal, noisy)


class TestRunStatsMerge:
    def test_merge_sums_cpu_and_takes_wall_clock(self):
        runs = [
            RunStats(algorithm="alg2", backend="tdd", time_seconds=2.0,
                     max_nodes=10, predicted_cost=100, terms_total=4),
            RunStats(algorithm="alg2", backend="tdd", time_seconds=3.0,
                     max_nodes=40, predicted_cost=50, terms_total=2),
        ]
        merged = RunStats.merge(runs, wall_seconds=3.5)
        assert merged.cpu_seconds == 5.0   # summed compute
        assert merged.time_seconds == 3.5  # what the user waited
        assert merged.max_nodes == 40      # peak, not sum
        assert merged.predicted_cost == 150  # counter, summed
        assert merged.terms_total == 6
        assert merged.algorithm == "alg2"
        assert merged.backend == "tdd"

    def test_merge_without_wall_clock_is_serial(self):
        runs = [RunStats(time_seconds=1.0), RunStats(time_seconds=2.0)]
        merged = RunStats.merge(runs)
        assert merged.time_seconds == merged.cpu_seconds == 3.0

    def test_merge_mixed_provenance(self):
        runs = [
            RunStats(algorithm="alg1", backend="tdd", early_stopped=True),
            RunStats(algorithm="alg2", backend="dense", timed_out=True),
        ]
        merged = RunStats.merge(runs)
        assert merged.algorithm == "mixed"
        assert merged.backend == "mixed"
        assert merged.early_stopped and merged.timed_out

    def test_merge_sums_cache_counters(self):
        runs = [
            RunStats(plan_cache_hit=3, result_cache_hit=1),
            RunStats(plan_cache_hit=2, result_cache_hit=0),
            RunStats(),
        ]
        merged = RunStats.merge(runs)
        assert merged.plan_cache_hit == 5
        assert merged.result_cache_hit == 1

    def test_cache_counters_default_zero_and_serialise(self):
        record = RunStats().to_dict()
        assert record["plan_cache_hit"] == 0
        assert record["result_cache_hit"] == 0

    def test_merge_sums_planning_counters(self):
        runs = [
            RunStats(planning_seconds=0.25, plan_trials=40),
            RunStats(planning_seconds=0.5, plan_trials=2),
            RunStats(),
        ]
        merged = RunStats.merge(runs)
        assert merged.planning_seconds == 0.75
        assert merged.plan_trials == 42

    def test_planning_counters_default_zero_and_serialise(self):
        record = RunStats().to_dict()
        assert record["planning_seconds"] == 0.0
        assert record["plan_trials"] == 0

    def test_merge_of_merged_stats_keeps_cpu_totals(self):
        """Re-merging batch aggregates must not lose summed CPU time."""
        first = RunStats.merge(
            [RunStats(time_seconds=1.0), RunStats(time_seconds=1.0)],
            wall_seconds=1.2,
        )
        again = RunStats.merge([first, RunStats(time_seconds=3.0)],
                               wall_seconds=4.0)
        assert again.cpu_seconds == 5.0
        assert again.time_seconds == 4.0

    def test_merge_empty(self):
        merged = RunStats.merge([])
        assert merged.time_seconds == 0.0
        merged = RunStats.merge([], wall_seconds=1.5)
        assert merged.time_seconds == 1.5

    def test_merge_skips_none_entries(self):
        merged = RunStats.merge([None, RunStats(time_seconds=2.0)])
        assert merged.cpu_seconds == 2.0


class TestPickleRoundTrip:
    """Worker transport runs on pickle; these types must survive it."""

    def test_run_stats(self):
        stats = RunStats(algorithm="alg1", backend="tdd", time_seconds=1.0,
                         max_nodes=7, term_times=[0.1, 0.2])
        assert pickle.loads(pickle.dumps(stats)) == stats

    def test_check_result_from_a_real_check(self):
        result = checked_result()
        clone = pickle.loads(pickle.dumps(result))
        assert clone == result
        assert clone.verdict == result.verdict
        assert clone.stats.max_nodes == result.stats.max_nodes

    def test_check_error(self):
        error = CheckError(error="boom", error_type="ValueError", index=2)
        clone = pickle.loads(pickle.dumps(error))
        assert clone == error
        assert clone.verdict == "ERROR"

    def test_check_config_hashable_and_picklable(self):
        config = CheckConfig(epsilon=0.05, backend="einsum")
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert hash(clone) == hash(config)  # worker session-cache key

    def test_contraction_plan(self):
        ideal = qft(2)
        noisy = insert_random_noise(ideal, 1, seed=0)
        network = algorithm_network(noisy, ideal, "alg2")
        plan = build_plan(network, max_intermediate_size=8)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.steps == plan.steps
        assert clone.slices == plan.slices
        assert clone.num_slices() == plan.num_slices()
        assert clone.dims == plan.dims


class TestStatsAggregator:
    def test_counters_accumulate_and_peaks_take_max(self):
        from repro.core import StatsAggregator

        aggregate = StatsAggregator()
        aggregate.add(RunStats(time_seconds=1.0, cpu_seconds=2.0,
                               plan_cache_hit=1, result_cache_hit=0,
                               max_nodes=10, terms_computed=3,
                               planning_seconds=0.25, plan_trials=12))
        aggregate.add(RunStats(time_seconds=0.5, cpu_seconds=0.0,
                               plan_cache_hit=0, result_cache_hit=1,
                               max_nodes=4, terms_computed=1,
                               early_stopped=True,
                               planning_seconds=0.05, plan_trials=0))
        aggregate.add(None)  # error responses carry no stats
        snapshot = aggregate.snapshot()
        assert snapshot["checks"] == 2
        assert snapshot["wall_seconds"] == 1.5
        # the second run never recorded cpu: wall stands in (merge rule)
        assert snapshot["cpu_seconds"] == 2.5
        assert snapshot["plan_cache_hits"] == 1
        assert snapshot["result_cache_hits"] == 1
        assert snapshot["planning_seconds"] == 0.3
        assert snapshot["plan_trials"] == 12
        assert snapshot["max_nodes"] == 10
        assert snapshot["terms_computed"] == 4
        assert snapshot["early_stopped"] == 1
        assert snapshot["timed_out"] == 0

    def test_snapshot_is_a_point_in_time_copy(self):
        from repro.core import StatsAggregator

        aggregate = StatsAggregator()
        aggregate.add(RunStats(time_seconds=1.0))
        before = aggregate.snapshot()
        aggregate.add(RunStats(time_seconds=1.0))
        assert before["checks"] == 1
        assert aggregate.snapshot()["checks"] == 2

    def test_thread_safe_under_concurrent_adds(self):
        import threading

        from repro.core import StatsAggregator

        aggregate = StatsAggregator()

        def spin():
            for _ in range(500):
                aggregate.add(RunStats(time_seconds=0.001,
                                       result_cache_hit=1))

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = aggregate.snapshot()
        assert snapshot["checks"] == 4000
        assert snapshot["result_cache_hits"] == 4000
