"""Unit tests for the sampled-fidelity extension (paper future work)."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.core import (
    fidelity_sampled,
    jamiolkowski_fidelity_circuits,
    jamiolkowski_fidelity_dense,
    mixed_unitary_decomposition,
)
from repro.library import qft
from repro.noise import (
    amplitude_damping,
    bit_flip,
    depolarizing,
    insert_random_noise,
    phase_flip,
)


class TestMixedUnitaryDecomposition:
    def test_depolarizing(self):
        pairs = mixed_unitary_decomposition(depolarizing(0.97))
        assert pairs is not None
        weights = [w for w, _ in pairs]
        assert np.isclose(sum(weights), 1.0)
        assert np.isclose(weights[0], 0.97)

    def test_bit_flip(self):
        pairs = mixed_unitary_decomposition(bit_flip(0.9))
        assert pairs is not None
        assert np.isclose(pairs[1][0], 0.1)
        assert np.allclose(pairs[1][1], [[0, 1], [1, 0]])

    def test_amplitude_damping_not_mixed_unitary(self):
        assert mixed_unitary_decomposition(amplitude_damping(0.2)) is None


class TestFidelitySampled:
    def test_matches_exact_on_small_case(self):
        ideal = qft(3)
        noisy = insert_random_noise(
            ideal, 3, channel_factory=lambda: depolarizing(0.95), seed=17
        )
        exact = jamiolkowski_fidelity_dense(noisy, ideal)
        result = fidelity_sampled(noisy, ideal, num_samples=400, seed=5)
        assert abs(result.estimate - exact) < result.confidence_radius

    def test_confidence_interval_shrinks(self):
        ideal = qft(2)
        noisy = insert_random_noise(ideal, 2, seed=3)
        small = fidelity_sampled(noisy, ideal, num_samples=10, seed=1)
        large = fidelity_sampled(noisy, ideal, num_samples=200, seed=1)
        assert large.confidence_radius < small.confidence_radius

    def test_bounds_clamped(self):
        ideal = qft(2)
        noisy = insert_random_noise(ideal, 1, seed=3)
        result = fidelity_sampled(noisy, ideal, num_samples=20, seed=0)
        assert 0.0 <= result.lower <= result.estimate <= result.upper <= 1.0

    def test_noiseless_circuit_gives_one(self):
        ideal = qft(2)
        result = fidelity_sampled(ideal, ideal, num_samples=5, seed=0)
        assert np.isclose(result.estimate, 1.0)

    def test_rejects_non_mixed_unitary(self):
        ideal = QuantumCircuit(1).h(0)
        noisy = QuantumCircuit(1).h(0)
        noisy.append(amplitude_damping(0.1), [0])
        with pytest.raises(ValueError):
            fidelity_sampled(noisy, ideal, num_samples=5)

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            fidelity_sampled(qft(2), qft(2), num_samples=0)

    def test_stats_recorded(self):
        ideal = qft(2)
        noisy = insert_random_noise(ideal, 2, seed=3)
        result = fidelity_sampled(noisy, ideal, num_samples=15, seed=0)
        assert result.stats.terms_computed == 15
        assert result.num_samples == 15


class TestNoisyVsNoisy:
    def test_identical_noisy_circuits(self):
        noisy = insert_random_noise(qft(2), 2, seed=4)
        assert np.isclose(
            jamiolkowski_fidelity_circuits(noisy, noisy), 1.0, atol=1e-7
        )

    def test_reduces_to_unitary_case(self):
        ideal = qft(2)
        noisy = insert_random_noise(ideal, 2, seed=4)
        general = jamiolkowski_fidelity_circuits(noisy, ideal)
        special = jamiolkowski_fidelity_dense(noisy, ideal)
        assert np.isclose(general, special, atol=1e-6)

    def test_two_different_noisy_circuits(self):
        ideal = QuantumCircuit(1).h(0)
        a = QuantumCircuit(1).h(0)
        a.append(phase_flip(0.9), [0])
        b = QuantumCircuit(1).h(0)
        b.append(phase_flip(0.8), [0])
        f = jamiolkowski_fidelity_circuits(a, b)
        assert 0.9 < f < 1.0

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            jamiolkowski_fidelity_circuits(qft(2), qft(3))
