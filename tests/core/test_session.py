"""Unit tests for CheckConfig, CheckSession and result serialisation."""

import json

import numpy as np
import pytest

from repro.backends import DenseBackend
from repro.core import (
    CheckConfig,
    CheckSession,
    EquivalenceChecker,
    jamiolkowski_fidelity_dense,
)
from repro.library import qft
from repro.noise import depolarizing, insert_random_noise


def make_pairs(count=3, noises=2):
    ideal = qft(3)
    return [
        (ideal, insert_random_noise(ideal, noises, seed=seed))
        for seed in range(count)
    ]


class TestCheckConfig:
    def test_defaults(self):
        config = CheckConfig()
        assert config.epsilon == 0.01
        assert config.algorithm == "auto"
        assert config.backend == "tdd"
        assert config.share_computed_table

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CheckConfig().epsilon = 0.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epsilon": -0.1},
            {"epsilon": 1.5},
            {"algorithm": "alg3"},
            {"backend": "tddd"},  # typo must fail at construction
            {"backend": 42},
            {"order_method": "tree_decompositon"},  # typo
            {"alg1_max_noises": -1},
            {"planner": "gredy"},  # typo
            {"max_intermediate_size": 0},
        ],
    )
    def test_validation_at_construction(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            CheckConfig(**kwargs)

    def test_backend_instance_accepted(self):
        config = CheckConfig(backend=DenseBackend())
        assert config.backend_name == "dense"

    def test_plan_knobs_conflicting_with_instance_backend_rejected(self):
        """Instance backends keep their own config; silent knob loss is
        an error, matching instances that already agree are fine."""
        with pytest.raises(ValueError, match="planner"):
            CheckConfig(backend=DenseBackend(), planner="greedy")
        with pytest.raises(ValueError, match="max_intermediate_size"):
            CheckConfig(backend=DenseBackend(), max_intermediate_size=4)
        with pytest.raises(ValueError, match="order_method"):
            CheckConfig(backend=DenseBackend(), order_method="min_fill")
        config = CheckConfig(
            backend=DenseBackend(planner="greedy", max_intermediate_size=4),
            planner="greedy",
            max_intermediate_size=4,
        )
        assert config.backend.max_intermediate_size == 4

    def test_planner_knobs_reach_the_backend(self):
        session = CheckSession(
            CheckConfig(
                backend="dense", planner="greedy", max_intermediate_size=64
            )
        )
        assert session.backend.planner == "greedy"
        assert session.backend.max_intermediate_size == 64

    def test_sliced_session_checks_agree_with_unsliced(self):
        ideal, noisy = make_pairs(1)[0]
        plain = CheckSession(CheckConfig(backend="dense")).check(ideal, noisy)
        sliced = CheckSession(
            CheckConfig(backend="dense", max_intermediate_size=16)
        ).check(ideal, noisy)
        assert sliced.stats.max_intermediate_size <= 16
        assert sliced.stats.slice_count > 1
        assert abs(sliced.fidelity - plain.fidelity) < 1e-9

    def test_replace_revalidates(self):
        config = CheckConfig()
        assert config.replace(epsilon=0.2).epsilon == 0.2
        with pytest.raises(ValueError):
            config.replace(backend="nope")

    def test_to_dict_is_json_safe(self):
        config = CheckConfig(backend=DenseBackend(), epsilon=0.05)
        payload = json.dumps(config.to_dict())
        assert json.loads(payload)["backend"] == "dense"


class TestCheckSession:
    def test_overrides_compose_with_config(self):
        session = CheckSession(CheckConfig(epsilon=0.01), epsilon=0.2)
        assert session.config.epsilon == 0.2

    def test_check_matches_legacy_checker(self):
        ideal, noisy = make_pairs(1)[0]
        new = CheckSession(CheckConfig(epsilon=0.05)).check(ideal, noisy)
        old = EquivalenceChecker(epsilon=0.05).check(ideal, noisy)
        assert new.equivalent == old.equivalent
        assert np.isclose(new.fidelity, old.fidelity, atol=1e-12)
        assert new.algorithm == old.algorithm

    def test_check_many_streams_results(self):
        pairs = make_pairs(3)
        session = CheckSession(CheckConfig(epsilon=0.05))
        results = list(session.check_many(pairs))
        assert len(results) == 3
        for result in results:
            assert result.equivalent
            assert result.backend == "tdd"

    def test_check_many_shares_backend_state(self):
        pairs = make_pairs(2)
        session = CheckSession(CheckConfig(algorithm="alg2"))
        list(session.check_many(pairs))
        manager = session.backend.manager
        assert manager is not None
        list(session.check_many(pairs))
        assert session.backend.manager is manager
        session.reset()
        assert session.backend.manager is None

    @pytest.mark.parametrize("backend", ["tdd", "dense", "einsum"])
    def test_check_many_every_backend(self, backend):
        pairs = make_pairs(2)
        session = CheckSession(CheckConfig(backend=backend))
        for result, (ideal, noisy) in zip(session.check_many(pairs), pairs):
            ref = jamiolkowski_fidelity_dense(noisy, ideal)
            assert result.backend == backend
            if not result.is_lower_bound:
                assert np.isclose(result.fidelity, ref, atol=1e-9)
            else:
                assert result.fidelity <= ref + 1e-9

    def test_fidelity_is_exact(self):
        ideal, noisy = make_pairs(1)[0]
        session = CheckSession(CheckConfig(epsilon=0.05))
        value = session.fidelity(ideal, noisy)
        assert np.isclose(
            value, jamiolkowski_fidelity_dense(noisy, ideal), atol=1e-9
        )

    def test_dense_algorithm_branch(self):
        ideal, noisy = make_pairs(1)[0]
        result = CheckSession(CheckConfig(algorithm="dense")).check(
            ideal, noisy
        )
        assert result.algorithm == "dense"
        assert result.backend == "dense-linalg"

    def test_mismatched_widths_rejected(self):
        session = CheckSession()
        with pytest.raises(ValueError):
            session.check(qft(2), qft(3))


class TestLegacyShim:
    def test_checker_exposes_config(self):
        checker = EquivalenceChecker(epsilon=0.03, backend="dense")
        assert checker.epsilon == 0.03
        assert checker.backend == "dense"
        assert checker.config.backend == "dense"

    def test_typo_backend_fails_at_construction(self):
        with pytest.raises(ValueError):
            EquivalenceChecker(backend="tdd2")

    def test_typo_order_method_fails_at_construction(self):
        with pytest.raises(ValueError):
            EquivalenceChecker(order_method="sequental")


class TestSerialisation:
    def test_check_result_json_roundtrip(self):
        ideal, noisy = make_pairs(1)[0]
        result = CheckSession(CheckConfig(epsilon=0.05)).check(ideal, noisy)
        parsed = json.loads(result.to_json())
        assert parsed["equivalent"] == result.equivalent
        assert parsed["verdict"] == result.verdict
        assert parsed["fidelity"] == result.fidelity
        assert parsed["backend"] == result.backend
        assert parsed["time_seconds"] == result.stats.time_seconds
        assert parsed["stats"]["algorithm"] == result.algorithm

    def test_run_stats_dict_fields(self):
        ideal, noisy = make_pairs(1)[0]
        result = CheckSession(CheckConfig(algorithm="alg1")).check(
            ideal, noisy
        )
        stats = result.stats.to_dict()
        assert stats["backend"] == "tdd"
        assert stats["terms_total"] >= stats["terms_computed"] >= 1
        json.dumps(stats)  # JSON-safe


class TestFidelityResultValidation:
    """fidelity_result validates the pair like every other entry point."""

    def test_qubit_mismatch_rejected(self):
        from repro import CheckSession, qft

        with pytest.raises(ValueError, match="same number of qubits"):
            CheckSession().fidelity_result(qft(3), qft(2))

    def test_noisy_ideal_rejected(self):
        from repro import CheckSession, insert_random_noise, qft

        noisy = insert_random_noise(qft(2), 1, seed=0)
        with pytest.raises(ValueError, match="unitary"):
            CheckSession().fidelity(noisy, noisy)
