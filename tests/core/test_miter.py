"""Unit tests for miter constructions."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.core import (
    alg1_trace_network,
    alg2_trace_network,
    double_circuit,
    lower_kraus_selection,
    miter_circuit,
)
from repro.noise import bit_flip, depolarizing
from repro.tensornet import contraction_order


class TestLowerKrausSelection:
    def test_replaces_channels(self):
        circuit = QuantumCircuit(1).h(0)
        circuit.append(bit_flip(0.9), [0])
        lowered = lower_kraus_selection(circuit, (1,))
        assert lowered.is_unitary_circuit is True  # all Gate instructions
        assert np.allclose(
            lowered[1].operation.matrix,
            bit_flip(0.9).kraus_operators[1],
        )

    def test_selection_length_checked(self):
        circuit = QuantumCircuit(1).h(0)
        with pytest.raises(ValueError):
            lower_kraus_selection(circuit, (0,))

    def test_kraus_index_range(self):
        circuit = QuantumCircuit(1)
        circuit.append(bit_flip(0.9), [0])
        with pytest.raises(ValueError):
            lower_kraus_selection(circuit, (2,))


class TestMiterCircuit:
    def test_identity_when_equal(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        miter = miter_circuit(circuit, circuit)
        assert np.allclose(miter.to_matrix(), np.eye(4))

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            miter_circuit(QuantumCircuit(1), QuantumCircuit(2))


class TestDoubleCircuit:
    def test_unitary_gets_conjugate_twin(self):
        circuit = QuantumCircuit(1).s(0)
        doubled = double_circuit(circuit)
        assert doubled.num_qubits == 2
        assert len(doubled) == 2
        u = doubled.to_matrix()
        s = np.diag([1, 1j])
        assert np.allclose(u, np.kron(s, np.conjugate(s)))

    def test_noise_becomes_matrix_rep(self):
        p = 0.9
        circuit = QuantumCircuit(1)
        circuit.append(bit_flip(p), [0])
        doubled = double_circuit(circuit)
        assert len(doubled) == 1
        assert doubled[0].qubits == (0, 1)
        assert np.allclose(
            doubled[0].operation.matrix, bit_flip(p).matrix_rep()
        )

    def test_doubled_implements_superoperator(self):
        """The doubled circuit's matrix equals M_E = sum_i E_i (x) E_i*."""
        from repro.noise import circuit_superoperator_matrix

        circuit = QuantumCircuit(2).h(0)
        circuit.append(depolarizing(0.9), [0])
        circuit.cx(0, 1)
        circuit.append(bit_flip(0.8), [1])
        doubled = double_circuit(circuit)
        # Doubled qubit layout is (q0, q1, q0', q1'), i.e. row bits then
        # column bits of the row-stacked vectorisation — exactly M_E.
        assert np.allclose(
            doubled.to_matrix(), circuit_superoperator_matrix(circuit)
        )


class TestTraceNetworks:
    def test_alg1_trace_value(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        net = alg1_trace_network(circuit, circuit)
        value = net.contract_scalar(order=contraction_order(net))
        assert np.isclose(value, 4.0)  # tr(I) on 2 qubits

    def test_alg2_equivalence_value(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).t(1)
        net = alg2_trace_network(circuit, circuit)
        value = net.contract_scalar(order=contraction_order(net))
        assert np.isclose(value, 16.0)  # |tr(I)|^2 on 2 qubits

    def test_alg1_with_local_optimisations(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).swap(0, 1)
        net = alg1_trace_network(
            circuit, circuit, use_local_optimisations=True
        )
        value = net.contract_scalar(order=contraction_order(net))
        assert np.isclose(value, 4.0)

    def test_alg2_width_mismatch(self):
        with pytest.raises(ValueError):
            alg2_trace_network(QuantumCircuit(1), QuantumCircuit(2))
