"""Unit tests for Algorithm I's shared network template."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.core import (
    alg1_template,
    fidelity_individual,
    jamiolkowski_fidelity_dense,
)
from repro.library import qft
from repro.noise import bit_flip, depolarizing, insert_random_noise
from repro.tdd import contract_network_scalar
from repro.tensornet import contraction_order


class TestTemplateConstruction:
    def test_slots_point_at_noise_tensors(self):
        ideal = qft(2)
        noisy = insert_random_noise(ideal, 2, seed=0)
        template = alg1_template(noisy, ideal)
        assert template is not None
        assert len(template.site_slots) == 2
        for slot, ops in zip(template.site_slots, template.site_kraus):
            tensor = template.network.tensors[slot]
            assert tensor.rank == 2
            assert np.allclose(
                tensor.data.reshape(2, 2), ops[0]
            )

    def test_instantiate_swaps_only_noise_slots(self):
        ideal = qft(2)
        noisy = insert_random_noise(ideal, 2, seed=0)
        template = alg1_template(noisy, ideal)
        net = template.instantiate((1, 2))
        shared = sum(
            1 for a, b in zip(template.network.tensors, net.tensors)
            if a is b
        )
        assert shared == len(net.tensors) - 2

    def test_instantiated_network_value(self):
        """Template networks give the same traces as freshly built ones."""
        from repro.core import alg1_trace_network, lower_kraus_selection

        ideal = qft(2)
        noisy = insert_random_noise(ideal, 2, seed=0)
        template = alg1_template(noisy, ideal)
        for selection in [(0, 0), (1, 3), (2, 1)]:
            from_template = template.instantiate(selection)
            fresh = alg1_trace_network(
                lower_kraus_selection(noisy, selection), ideal
            )
            order = contraction_order(fresh)
            assert np.isclose(
                contract_network_scalar(from_template),
                contract_network_scalar(fresh, order=order),
                atol=1e-9,
            )

    def test_untouched_wire_noise_falls_back(self):
        """Noise on a wire with no gates self-traces at closure; the
        template must refuse and Algorithm I must fall back correctly."""
        ideal = QuantumCircuit(2).h(0)
        noisy = QuantumCircuit(2).h(0)
        noisy.append(bit_flip(0.9), [1])
        assert alg1_template(noisy, ideal) is None
        result = fidelity_individual(noisy, ideal)
        ref = jamiolkowski_fidelity_dense(noisy, ideal)
        assert np.isclose(result.fidelity, ref, atol=1e-9)


class TestTemplatePathEquivalence:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_dense_reference(self, k):
        ideal = qft(3)
        noisy = insert_random_noise(
            ideal, k, channel_factory=lambda: depolarizing(0.97), seed=k
        )
        result = fidelity_individual(noisy, ideal)
        ref = jamiolkowski_fidelity_dense(noisy, ideal)
        assert np.isclose(result.fidelity, ref, atol=1e-8)

    def test_local_optimisations_disable_template(self):
        """The optimised path (per-term cancellation) stays correct."""
        ideal = qft(3)
        noisy = insert_random_noise(ideal, 2, seed=5)
        plain = fidelity_individual(noisy, ideal).fidelity
        optimised = fidelity_individual(
            noisy, ideal, use_local_optimisations=True
        ).fidelity
        assert np.isclose(plain, optimised, atol=1e-8)

    def test_without_shared_table_still_correct(self):
        ideal = qft(2)
        noisy = insert_random_noise(ideal, 2, seed=3)
        ref = jamiolkowski_fidelity_dense(noisy, ideal)
        result = fidelity_individual(
            noisy, ideal, share_computed_table=False
        )
        assert np.isclose(result.fidelity, ref, atol=1e-9)

    def test_template_speedup(self):
        """The shared table + template must beat cold-cache mode."""
        ideal = qft(3)
        noisy = insert_random_noise(ideal, 3, seed=1)
        warm = fidelity_individual(noisy, ideal)
        cold = fidelity_individual(noisy, ideal, share_computed_table=False)
        assert warm.stats.time_seconds < cold.stats.time_seconds
