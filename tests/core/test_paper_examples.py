"""The paper's worked Examples 3, 4 and 5 as executable tests.

Example 3 (Alg I): QFT2 with a bit flip N before the second H and a phase
flip N' after S gives ``tr(U† E_11) = 4p`` and zero for the other three
terms, hence ``F_J = p^2``.

Example 4 (Alg II): the single doubled contraction yields ``16 p^2``.

Example 5: with p = 0.95 and eps = 0.1, the first trace term alone
certifies equivalence (partial sum 0.9025 > 0.9).
"""

import numpy as np
import pytest

from repro.core import (
    EquivalenceChecker,
    alg2_trace_network,
    fidelity_collective,
    fidelity_individual,
    lower_kraus_selection,
    alg1_trace_network,
)
from repro.tdd import contract_network_scalar
from tests.conftest import make_noisy_qft2


class TestExample3:
    def test_individual_traces(self, qft2_ideal, qft2_noisy):
        """tr(U† E_11) = 4p; the three other terms vanish."""
        p = 0.9
        traces = []
        for selection in [(0, 0), (0, 1), (1, 0), (1, 1)]:
            lowered = lower_kraus_selection(qft2_noisy, selection)
            net = alg1_trace_network(lowered, qft2_ideal)
            traces.append(contract_network_scalar(net))
        assert np.isclose(traces[0], 4 * p)
        for t in traces[1:]:
            assert np.isclose(t, 0.0, atol=1e-9)

    def test_fidelity_is_p_squared(self, qft2_ideal, qft2_noisy):
        result = fidelity_individual(qft2_noisy, qft2_ideal)
        assert np.isclose(result.fidelity, 0.81, atol=1e-9)
        assert result.stats.terms_total == 4

    @pytest.mark.parametrize("p", [0.5, 0.8, 0.99, 1.0])
    def test_other_parameters(self, qft2_ideal, p):
        noisy = make_noisy_qft2(p)
        result = fidelity_individual(noisy, qft2_ideal)
        assert np.isclose(result.fidelity, p * p, atol=1e-9)


class TestExample4:
    def test_collective_trace_is_16_p_squared(self, qft2_ideal, qft2_noisy):
        p = 0.9
        net = alg2_trace_network(qft2_noisy, qft2_ideal)
        value = contract_network_scalar(net)
        assert np.isclose(value, 16 * p * p)

    def test_fidelity_matches(self, qft2_ideal, qft2_noisy):
        result = fidelity_collective(qft2_noisy, qft2_ideal)
        assert np.isclose(result.fidelity, 0.81, atol=1e-9)
        assert result.stats.terms_computed == 1


class TestExample5:
    def test_early_termination_certifies(self, qft2_ideal):
        noisy = make_noisy_qft2(0.95)
        result = fidelity_individual(noisy, qft2_ideal, epsilon=0.1)
        assert result.stats.early_stopped
        assert result.stats.terms_computed == 1
        # Partial sum (4 * 0.95)^2 / 16 = 0.9025 > 0.9.
        assert np.isclose(result.fidelity, 0.9025, atol=1e-9)
        assert result.is_lower_bound

    def test_checker_accepts(self, qft2_ideal):
        noisy = make_noisy_qft2(0.95)
        out = EquivalenceChecker(epsilon=0.1).check(qft2_ideal, noisy)
        assert out.equivalent

    def test_checker_rejects_large_error(self, qft2_ideal):
        noisy = make_noisy_qft2(0.5)  # F_J = 0.25
        out = EquivalenceChecker(epsilon=0.1, algorithm="alg2").check(
            qft2_ideal, noisy
        )
        assert not out.equivalent
        assert np.isclose(out.fidelity, 0.25, atol=1e-9)
