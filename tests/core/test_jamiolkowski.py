"""Unit tests for Jamiolkowski fidelity definitions and properties."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.core import (
    average_fidelity_from_jamiolkowski,
    fidelity_from_traces,
    jamiolkowski_distance,
    jamiolkowski_fidelity_choi,
    jamiolkowski_fidelity_dense,
    jamiolkowski_fidelity_kraus,
)
from repro.linalg import random_statevector, random_unitary, state_fidelity
from repro.noise import (
    KrausChannel,
    bit_flip,
    circuit_kraus_operators,
    depolarizing,
    evolve_density,
    insert_random_noise,
    kraus_to_channel,
)


class TestTraceFormula:
    def test_identity_channel(self):
        assert np.isclose(
            jamiolkowski_fidelity_kraus([np.eye(2)], np.eye(2)), 1.0
        )

    def test_global_phase_invariant(self):
        u = np.diag([1, 1j])
        assert np.isclose(
            jamiolkowski_fidelity_kraus([1j * u], u), 1.0
        )

    def test_orthogonal_unitaries(self):
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        assert np.isclose(
            jamiolkowski_fidelity_kraus([x], np.eye(2)), 0.0
        )

    def test_matches_choi_definition(self, rng):
        """The trace formula equals F(rho_E, rho_U) (paper Sec. III)."""
        u = random_unitary(4, rng)
        channel = KrausChannel(
            depolarizing(0.9).tensor(bit_flip(0.8)).kraus_operators,
            validate=False,
        )
        via_traces = jamiolkowski_fidelity_kraus(
            channel.kraus_operators, u
        )
        via_choi = jamiolkowski_fidelity_choi(channel, u)
        assert np.isclose(via_traces, via_choi, atol=1e-8)

    def test_fidelity_from_traces_normalisation(self):
        assert np.isclose(fidelity_from_traces([4.0], 4), 1.0)
        assert np.isclose(fidelity_from_traces([2.0, 2.0], 4), 0.5)


class TestDenseCircuitPath:
    def test_noiseless_is_one(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        assert np.isclose(
            jamiolkowski_fidelity_dense(circuit, circuit), 1.0
        )

    def test_depolarising_on_identity(self):
        """One depolarising channel vs identity: F_J = p + (1-p)/... ."""
        p = 0.9
        noisy = QuantumCircuit(1)
        noisy.append(depolarizing(p), [0])
        ideal = QuantumCircuit(1)
        # F_J = |tr(sqrt(p) I)|^2/4 + 3 * |tr(sqrt(q) P)|^2/4 = p.
        assert np.isclose(jamiolkowski_fidelity_dense(noisy, ideal), p)

    def test_haar_average_interpretation(self, rng):
        """F_J relates to the average output fidelity over random inputs:
        avg F(E(psi), U psi) ~= (d F_J + 1) / (d + 1)."""
        ideal = QuantumCircuit(2).h(0).cx(0, 1).s(1)
        noisy = insert_random_noise(
            ideal, 2, channel_factory=lambda: depolarizing(0.92), seed=3
        )
        fj = jamiolkowski_fidelity_dense(noisy, ideal)
        predicted = average_fidelity_from_jamiolkowski(fj, 4)
        u = ideal.to_matrix()
        samples = []
        for _ in range(300):
            psi = random_statevector(4, rng)
            rho_out = evolve_density(noisy, np.outer(psi, psi.conj()))
            samples.append(
                float(np.real(np.conjugate(u @ psi) @ rho_out @ (u @ psi)))
            )
        assert np.isclose(np.mean(samples), predicted, atol=0.01)


class TestMetricProperties:
    def test_distance_at_extremes(self):
        assert jamiolkowski_distance(1.0) == 0.0
        assert jamiolkowski_distance(0.0) == 1.0

    def test_stability_under_ancilla(self):
        """F_J(E (x) I, U (x) I) == F_J(E, U) (paper property 1)."""
        p = 0.85
        noisy = QuantumCircuit(1)
        noisy.append(bit_flip(p), [0])
        ideal = QuantumCircuit(1)
        base = jamiolkowski_fidelity_dense(noisy, ideal)

        noisy2 = QuantumCircuit(2)
        noisy2.append(bit_flip(p), [0])
        ideal2 = QuantumCircuit(2)
        extended = jamiolkowski_fidelity_dense(noisy2, ideal2)
        assert np.isclose(base, extended, atol=1e-9)

    def test_chaining_inequality(self):
        """C_J(E1 o E2, U1 o U2) <= C_J(E1,U1) + C_J(E2,U2)."""
        p1, p2 = 0.9, 0.8
        ideal = QuantumCircuit(1).h(0)

        noisy_a = QuantumCircuit(1).h(0)
        noisy_a.append(bit_flip(p1), [0])
        noisy_b = QuantumCircuit(1)
        noisy_b.append(phase_flip_like(p2), [0])
        noisy_b.h(0)

        combined = QuantumCircuit(1).h(0)
        combined.append(bit_flip(p1), [0])
        combined.append(phase_flip_like(p2), [0])
        combined.h(0)
        ideal_combined = QuantumCircuit(1).h(0).h(0)

        c_a = jamiolkowski_distance(
            jamiolkowski_fidelity_dense(noisy_a, ideal)
        )
        c_b = jamiolkowski_distance(
            jamiolkowski_fidelity_dense(noisy_b, ideal)
        )
        c_all = jamiolkowski_distance(
            jamiolkowski_fidelity_dense(combined, ideal_combined)
        )
        assert c_all <= c_a + c_b + 1e-9


def phase_flip_like(p):
    from repro.noise import phase_flip

    return phase_flip(p)
