"""Unit tests for the EquivalenceChecker front end."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.core import EquivalenceChecker, approx_equivalent, jamiolkowski_fidelity
from repro.library import qft
from repro.noise import bit_flip, depolarizing, insert_random_noise


class TestDeprecation:
    def test_construction_warns_and_names_engine(self):
        with pytest.warns(DeprecationWarning, match="repro.Engine"):
            EquivalenceChecker()

    def test_validation_errors_name_the_choices(self):
        """Satellite: every config validation error lists valid values."""
        from repro.backends.base import resolve_backend
        from repro.core import CheckConfig

        with pytest.raises(ValueError, match="alg1"):
            CheckConfig(algorithm="bogus")
        with pytest.raises(ValueError, match="tdd"):
            CheckConfig(backend="bogus")
        with pytest.raises(TypeError, match="tdd"):
            CheckConfig(backend=42)
        with pytest.raises(ValueError, match="tree_decomposition"):
            CheckConfig(order_method="bogus")
        with pytest.raises(ValueError, match="greedy"):
            CheckConfig(planner="bogus")
        with pytest.raises(ValueError, match="tdd"):
            resolve_backend("bogus")
        with pytest.raises(TypeError, match="tdd"):
            resolve_backend(42)


class TestDispatch:
    def test_auto_prefers_alg1_for_few_noises(self):
        checker = EquivalenceChecker()
        noisy = insert_random_noise(qft(3), 1, seed=0)
        assert checker.select_algorithm(noisy) == "alg1"

    def test_auto_prefers_alg2_for_many_noises(self):
        checker = EquivalenceChecker()
        noisy = insert_random_noise(qft(3), 6, seed=0)
        assert checker.select_algorithm(noisy) == "alg2"

    def test_explicit_algorithm_respected(self):
        checker = EquivalenceChecker(algorithm="alg2")
        noisy = insert_random_noise(qft(3), 1, seed=0)
        assert checker.select_algorithm(noisy) == "alg2"

    def test_invalid_algorithm(self):
        with pytest.raises(ValueError):
            EquivalenceChecker(algorithm="bogus")

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            EquivalenceChecker(epsilon=-0.1)


class TestCheck:
    def test_equivalent_small_noise(self):
        ideal = qft(3)
        noisy = insert_random_noise(ideal, 2, seed=1)  # p = 0.999
        out = EquivalenceChecker(epsilon=0.01).check(ideal, noisy)
        assert out.equivalent
        assert out.fidelity > 0.99

    def test_not_equivalent_heavy_noise(self):
        ideal = qft(2)
        noisy = insert_random_noise(
            ideal, 3, channel_factory=lambda: depolarizing(0.5), seed=1
        )
        out = EquivalenceChecker(epsilon=0.01, algorithm="alg2").check(
            ideal, noisy
        )
        assert not out.equivalent

    def test_all_algorithms_same_verdict(self):
        ideal = qft(2)
        noisy = insert_random_noise(
            ideal, 2, channel_factory=lambda: bit_flip(0.9), seed=4
        )
        verdicts = set()
        for algorithm in ("alg1", "alg2", "dense"):
            out = EquivalenceChecker(
                epsilon=0.3, algorithm=algorithm
            ).check(ideal, noisy)
            verdicts.add(out.equivalent)
        assert len(verdicts) == 1

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            EquivalenceChecker().check(QuantumCircuit(1), QuantumCircuit(2))

    def test_noisy_ideal_rejected(self):
        ideal = QuantumCircuit(1)
        ideal.append(bit_flip(0.9), [0])
        with pytest.raises(ValueError):
            EquivalenceChecker().check(ideal, ideal)

    def test_negative_with_truncation_carries_note(self):
        # A non-equivalent instance where alg1 truncates: the result notes
        # that the bound is inconclusive evidence for inequivalence.
        ideal = qft(2)
        noisy = insert_random_noise(
            ideal, 2, channel_factory=lambda: depolarizing(0.6), seed=2
        )
        checker = EquivalenceChecker(epsilon=0.001, algorithm="alg1")
        out = checker.check(ideal, noisy)
        assert not out.equivalent

    def test_result_fields_populated(self):
        ideal = qft(2)
        noisy = insert_random_noise(ideal, 1, seed=0)
        out = EquivalenceChecker(epsilon=0.05).check(ideal, noisy)
        assert out.algorithm in ("alg1", "alg2")
        assert out.epsilon == 0.05
        assert out.stats.time_seconds >= 0


class TestConvenienceWrappers:
    def test_approx_equivalent(self):
        ideal = qft(2)
        noisy = insert_random_noise(ideal, 1, seed=0)
        assert approx_equivalent(ideal, noisy, epsilon=0.05)

    def test_jamiolkowski_fidelity_dispatch(self):
        ideal = qft(2)
        noisy = insert_random_noise(ideal, 1, seed=0)
        values = {
            jamiolkowski_fidelity(noisy, ideal, algorithm=a)
            for a in ("alg1", "alg2", "dense")
        }
        assert max(values) - min(values) < 1e-8

    def test_jamiolkowski_fidelity_unknown(self):
        with pytest.raises(ValueError):
            jamiolkowski_fidelity(qft(2), qft(2), algorithm="nope")
