"""Cross-validation tests for Algorithms I and II."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.core import (
    enumerate_selections,
    fidelity_collective,
    fidelity_individual,
    jamiolkowski_fidelity_dense,
)
from repro.library import bernstein_vazirani, qft
from repro.noise import (
    amplitude_damping,
    bit_flip,
    depolarizing,
    insert_random_noise,
)


def noisy_cases():
    """(name, ideal, noisy) triples covering several noise shapes."""
    cases = []
    ideal = qft(3)
    cases.append((
        "qft3_depol",
        ideal,
        insert_random_noise(ideal, 3, seed=11),
    ))
    ideal = bernstein_vazirani(4)
    cases.append((
        "bv4_bitflip",
        ideal,
        insert_random_noise(
            ideal, 2, channel_factory=lambda: bit_flip(0.93), seed=5
        ),
    ))
    ideal = QuantumCircuit(2, "bell").h(0).cx(0, 1)
    noisy = QuantumCircuit(2, "bell_ad").h(0)
    noisy.append(amplitude_damping(0.15), [0])
    noisy.cx(0, 1)
    noisy.append(amplitude_damping(0.1), [1])
    cases.append(("bell_amplitude_damping", ideal, noisy))
    return cases


class TestAgreement:
    @pytest.mark.parametrize(
        "name,ideal,noisy", noisy_cases(), ids=[c[0] for c in noisy_cases()]
    )
    def test_alg1_alg2_dense_agree(self, name, ideal, noisy):
        ref = jamiolkowski_fidelity_dense(noisy, ideal)
        f1 = fidelity_individual(noisy, ideal).fidelity
        f2 = fidelity_collective(noisy, ideal).fidelity
        assert np.isclose(f1, ref, atol=1e-8)
        assert np.isclose(f2, ref, atol=1e-8)

    @pytest.mark.parametrize("backend", ["tdd", "dense"])
    def test_backends_agree(self, backend):
        ideal = qft(3)
        noisy = insert_random_noise(ideal, 2, seed=8)
        f1 = fidelity_individual(noisy, ideal, backend=backend).fidelity
        f2 = fidelity_collective(noisy, ideal, backend=backend).fidelity
        assert np.isclose(f1, f2, atol=1e-8)

    @pytest.mark.parametrize(
        "order_method", ["sequential", "min_fill", "tree_decomposition"]
    )
    def test_order_methods_agree(self, order_method):
        ideal = bernstein_vazirani(4)
        noisy = insert_random_noise(ideal, 2, seed=8)
        ref = jamiolkowski_fidelity_dense(noisy, ideal)
        f2 = fidelity_collective(
            noisy, ideal, order_method=order_method
        ).fidelity
        assert np.isclose(f2, ref, atol=1e-8)

    def test_local_optimisations_preserve_value(self):
        ideal = qft(4)
        noisy = insert_random_noise(ideal, 2, seed=19)
        plain = fidelity_collective(noisy, ideal).fidelity
        opt = fidelity_collective(
            noisy, ideal, use_local_optimisations=True
        ).fidelity
        assert np.isclose(plain, opt, atol=1e-8)


class TestAlgorithm1Mechanics:
    def test_term_count_no_early_stop(self):
        ideal = qft(2)
        noisy = insert_random_noise(ideal, 2, seed=0)  # 4^2 = 16 terms
        result = fidelity_individual(noisy, ideal)
        assert result.stats.terms_computed == 16
        assert not result.is_lower_bound

    def test_early_stop_dominant_first(self):
        ideal = qft(2)
        noisy = insert_random_noise(ideal, 3, seed=0)  # p = 0.999
        result = fidelity_individual(noisy, ideal, epsilon=0.05)
        assert result.stats.early_stopped
        assert result.stats.terms_computed == 1

    def test_max_terms_cap(self):
        ideal = qft(2)
        noisy = insert_random_noise(ideal, 3, seed=0)
        result = fidelity_individual(noisy, ideal, max_terms=5)
        assert result.stats.terms_computed == 5
        assert result.is_lower_bound

    def test_lower_bound_below_true_value(self):
        ideal = qft(2)
        noisy = insert_random_noise(ideal, 3, seed=0)
        capped = fidelity_individual(noisy, ideal, max_terms=3).fidelity
        full = fidelity_individual(noisy, ideal).fidelity
        assert capped <= full + 1e-12

    def test_shared_table_fidelity_unchanged(self):
        ideal = qft(3)
        noisy = insert_random_noise(ideal, 2, seed=1)
        with_table = fidelity_individual(
            noisy, ideal, share_computed_table=True
        )
        without = fidelity_individual(
            noisy, ideal, share_computed_table=False
        )
        assert np.isclose(with_table.fidelity, without.fidelity, atol=1e-9)

    def test_invalid_epsilon(self):
        ideal = qft(2)
        noisy = insert_random_noise(ideal, 1, seed=0)
        with pytest.raises(ValueError):
            fidelity_individual(noisy, ideal, epsilon=2.0)

    def test_unknown_backend(self):
        ideal = qft(2)
        noisy = insert_random_noise(ideal, 1, seed=0)
        with pytest.raises(ValueError):
            fidelity_individual(noisy, ideal, backend="quantum")

    def test_term_times_recorded(self):
        ideal = qft(2)
        noisy = insert_random_noise(ideal, 1, seed=0)
        result = fidelity_individual(noisy, ideal)
        assert len(result.stats.term_times) == result.stats.terms_computed


class TestEnumerateSelections:
    def test_dominant_first_order(self):
        circuit = QuantumCircuit(1)
        circuit.append(depolarizing(0.999), [0])
        selections = list(enumerate_selections(circuit))
        # Index 0 is sqrt(p) I, by far the largest norm.
        assert selections[0] == (0,)
        assert len(selections) == 4

    def test_product_over_sites(self):
        circuit = QuantumCircuit(2)
        circuit.append(bit_flip(0.9), [0])
        circuit.append(depolarizing(0.9), [1])
        assert len(list(enumerate_selections(circuit))) == 8

    def test_no_noise_single_empty_selection(self):
        circuit = QuantumCircuit(1).h(0)
        assert list(enumerate_selections(circuit)) == [()]


class TestAlgorithm2Mechanics:
    def test_noiseless_circuit(self):
        ideal = qft(3)
        result = fidelity_collective(ideal, ideal)
        assert np.isclose(result.fidelity, 1.0)

    def test_stats_nodes_tracked(self):
        ideal = qft(3)
        noisy = insert_random_noise(ideal, 2, seed=2)
        result = fidelity_collective(noisy, ideal)
        assert result.stats.max_nodes > 0
        assert result.stats.time_seconds > 0

    def test_unknown_backend(self):
        ideal = qft(2)
        with pytest.raises(ValueError):
            fidelity_collective(ideal, ideal, backend="magic")

    def test_fidelity_clamped(self):
        # Exact equality must not exceed 1 even with float noise.
        ideal = bernstein_vazirani(5)
        result = fidelity_collective(ideal, ideal)
        assert 0.0 <= result.fidelity <= 1.0
