"""Unit tests for channel representation conversions."""

import math

import numpy as np
import pytest

from repro.linalg import random_kraus_set
from repro.noise import (
    KrausChannel,
    amplitude_damping,
    bit_flip,
    choi_to_kraus,
    depolarizing,
    kraus_from_superop,
    superop_to_choi,
    thermal_relaxation,
)


class TestSuperopChoiRoundTrip:
    @pytest.mark.parametrize("factory", [
        lambda: bit_flip(0.9),
        lambda: depolarizing(0.95),
        lambda: amplitude_damping(0.3),
    ])
    def test_superop_to_choi_matches_direct(self, factory):
        channel = factory()
        via_superop = superop_to_choi(channel.matrix_rep())
        direct = channel.choi_matrix(normalised=False)
        assert np.allclose(via_superop, direct, atol=1e-10)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            superop_to_choi(np.eye(3))


class TestChoiToKraus:
    def test_recovers_channel_action(self, rng):
        from repro.linalg import random_density_matrix

        channel = depolarizing(0.9)
        kraus = choi_to_kraus(channel.choi_matrix(normalised=False))
        rebuilt = KrausChannel(kraus, validate=False)
        rho = random_density_matrix(2, rng=rng)
        assert np.allclose(rebuilt.apply(rho), channel.apply(rho), atol=1e-9)

    def test_rank_matches_minimal_kraus(self):
        kraus = choi_to_kraus(bit_flip(0.8).choi_matrix(normalised=False))
        assert len(kraus) == 2

    def test_rejects_negative_choi(self):
        with pytest.raises(ValueError):
            choi_to_kraus(np.diag([1.0, -1.0, 1.0, 1.0]))

    def test_random_channel_roundtrip(self, rng):
        from repro.linalg import random_density_matrix

        ops = random_kraus_set(2, 3, rng)
        channel = KrausChannel(ops)
        rebuilt = kraus_from_superop(channel.matrix_rep())
        rho = random_density_matrix(2, rng=rng)
        assert np.allclose(
            rebuilt.apply(rho), channel.apply(rho), atol=1e-8
        )
        assert rebuilt.is_cptp(atol=1e-7)


class TestThermalRelaxation:
    def test_cptp(self):
        assert thermal_relaxation(50.0, 70.0, 1.0).is_cptp(atol=1e-8)

    def test_population_decay_rate(self):
        t1, t = 50.0, 10.0
        channel = thermal_relaxation(t1, t1, t)
        rho = np.diag([0.0, 1.0])  # excited state
        out = channel.apply(rho)
        assert np.isclose(np.real(out[1, 1]), math.exp(-t / t1), atol=1e-9)

    def test_coherence_decay_rate(self):
        t1, t2, t = 50.0, 30.0, 7.0
        channel = thermal_relaxation(t1, t2, t)
        rho = np.full((2, 2), 0.5)
        out = channel.apply(rho)
        assert np.isclose(
            abs(out[0, 1]), 0.5 * math.exp(-t / t2), atol=1e-9
        )

    def test_zero_time_is_identity(self):
        channel = thermal_relaxation(50.0, 70.0, 0.0)
        rho = np.array([[0.4, 0.2], [0.2, 0.6]], dtype=complex)
        assert np.allclose(channel.apply(rho), rho, atol=1e-10)

    def test_unphysical_t2_rejected(self):
        with pytest.raises(ValueError):
            thermal_relaxation(10.0, 25.0, 1.0)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            thermal_relaxation(-1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            thermal_relaxation(1.0, 1.0, -0.5)

    def test_usable_in_equivalence_checking(self):
        from repro.circuits import QuantumCircuit
        from repro.core import fidelity_collective, jamiolkowski_fidelity_dense

        ideal = QuantumCircuit(2).h(0).cx(0, 1)
        noisy = QuantumCircuit(2).h(0)
        noisy.append(thermal_relaxation(100.0, 60.0, 2.0), [0])
        noisy.cx(0, 1)
        ref = jamiolkowski_fidelity_dense(noisy, ideal)
        result = fidelity_collective(noisy, ideal)
        assert np.isclose(result.fidelity, ref, atol=1e-8)
