"""Unit tests for dense super-operator semantics of circuits."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.linalg import is_density_matrix, projector
from repro.noise import (
    bit_flip,
    circuit_kraus_operators,
    circuit_superoperator_matrix,
    depolarizing,
    evolve_density,
    kraus_to_channel,
)


class TestEvolveDensity:
    def test_unitary_circuit_matches_statevector(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        rho = evolve_density(circuit)
        assert np.allclose(rho, projector(circuit.statevector()))

    def test_trace_preserved_with_noise(self):
        circuit = QuantumCircuit(2).h(0)
        circuit.append(depolarizing(0.9), [0])
        circuit.cx(0, 1)
        circuit.append(bit_flip(0.8), [1])
        rho = evolve_density(circuit)
        assert np.isclose(np.trace(rho).real, 1.0)
        assert is_density_matrix(rho, atol=1e-8)

    def test_full_depolarisation(self):
        circuit = QuantumCircuit(1)
        # p=0 depolarising: rho -> (X rho X + Y rho Y + Z rho Z)/3; applied
        # to |0><0| this yields diag(1/3, 2/3).
        circuit.append(depolarizing(0.0), [0])
        rho = evolve_density(circuit)
        assert np.allclose(rho, np.diag([1 / 3, 2 / 3]))

    def test_custom_input(self):
        circuit = QuantumCircuit(1).x(0)
        rho_in = np.diag([0.2, 0.8])
        rho_out = evolve_density(circuit, rho_in)
        assert np.allclose(rho_out, np.diag([0.8, 0.2]))


class TestSuperoperatorMatrix:
    def test_identity_circuit(self):
        circuit = QuantumCircuit(1)
        assert np.allclose(circuit_superoperator_matrix(circuit), np.eye(4))

    def test_matches_evolution(self, rng):
        from repro.linalg import random_density_matrix

        circuit = QuantumCircuit(2).h(0)
        circuit.append(depolarizing(0.9), [0])
        circuit.cx(0, 1)
        mat = circuit_superoperator_matrix(circuit)
        rho = random_density_matrix(4, rng=rng)
        out_vec = mat @ rho.reshape(-1)
        assert np.allclose(out_vec.reshape(4, 4), evolve_density(circuit, rho))

    def test_composition_of_channels(self):
        circuit = QuantumCircuit(1)
        circuit.append(bit_flip(0.9), [0])
        circuit.append(bit_flip(0.9), [0])
        mat = circuit_superoperator_matrix(circuit)
        single = bit_flip(0.9).matrix_rep()
        assert np.allclose(mat, single @ single)


class TestCircuitKraus:
    def test_term_count(self):
        circuit = QuantumCircuit(1).h(0)
        circuit.append(bit_flip(0.9), [0])
        circuit.append(depolarizing(0.9), [0])
        ops = circuit_kraus_operators(circuit)
        assert len(ops) == 8

    def test_completeness(self):
        circuit = QuantumCircuit(2).h(0)
        circuit.append(depolarizing(0.9), [0])
        circuit.cx(0, 1)
        channel = kraus_to_channel(circuit_kraus_operators(circuit))
        assert channel.is_cptp(atol=1e-8)

    def test_max_terms_guard(self):
        circuit = QuantumCircuit(1)
        for _ in range(10):
            circuit.append(depolarizing(0.9), [0])
        with pytest.raises(ValueError):
            circuit_kraus_operators(circuit, max_terms=100)

    def test_matches_superoperator(self):
        circuit = QuantumCircuit(1).h(0)
        circuit.append(bit_flip(0.85), [0])
        circuit.s(0)
        ops = circuit_kraus_operators(circuit)
        rebuilt = sum(np.kron(op, np.conjugate(op)) for op in ops)
        assert np.allclose(rebuilt, circuit_superoperator_matrix(circuit))
