"""Unit tests for noise insertion policies."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.library import qft
from repro.noise import (
    NoiseModel,
    bit_flip,
    depolarizing,
    insert_random_noise,
    two_qubit_depolarizing,
)


class TestInsertRandomNoise:
    def test_count(self):
        noisy = insert_random_noise(qft(3), 5, seed=0)
        assert noisy.num_noise_sites == 5

    def test_zero_noises(self):
        noisy = insert_random_noise(qft(3), 0, seed=0)
        assert noisy.num_noise_sites == 0
        assert noisy.num_gates == qft(3).num_gates

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            insert_random_noise(qft(3), -1)

    def test_original_untouched(self):
        ideal = qft(3)
        before = len(ideal)
        insert_random_noise(ideal, 4, seed=1)
        assert len(ideal) == before

    def test_deterministic_with_seed(self):
        a = insert_random_noise(qft(3), 4, seed=9)
        b = insert_random_noise(qft(3), 4, seed=9)
        assert [i.qubits for i in a] == [i.qubits for i in b]
        assert [i.name for i in a] == [i.name for i in b]

    def test_default_channel_is_paper_depolarizing(self):
        noisy = insert_random_noise(qft(2), 1, seed=0)
        site = noisy.noise_instructions()[0]
        assert site.name == "depolarizing"
        assert site.num_kraus == 4

    def test_custom_factory(self):
        noisy = insert_random_noise(
            qft(2), 2, channel_factory=lambda: bit_flip(0.95), seed=0
        )
        assert all(i.name == "bit_flip" for i in noisy.noise_instructions())

    def test_rejects_multiqubit_factory(self):
        with pytest.raises(ValueError):
            insert_random_noise(
                qft(2), 1,
                channel_factory=lambda: two_qubit_depolarizing(0.9), seed=0,
            )

    def test_gate_order_preserved(self):
        ideal = qft(3)
        noisy = insert_random_noise(ideal, 3, seed=4)
        ideal_names = [i.name for i in ideal]
        noisy_gate_names = [i.name for i in noisy if i.is_unitary]
        assert noisy_gate_names == ideal_names


class TestNoiseModel:
    def test_per_gate_attachment(self):
        model = NoiseModel().add_all_qubit_quantum_error(
            depolarizing(0.999), ["h"]
        )
        circuit = QuantumCircuit(2).h(0).cx(0, 1).h(1)
        noisy = model.apply(circuit)
        assert noisy.num_noise_sites == 2

    def test_two_qubit_gate_gets_noise_on_both(self):
        model = NoiseModel().add_all_qubit_quantum_error(
            depolarizing(0.999), ["cx"]
        )
        noisy = model.apply(QuantumCircuit(2).cx(0, 1))
        assert noisy.num_noise_sites == 2

    def test_matching_width_channel(self):
        model = NoiseModel().add_all_qubit_quantum_error(
            two_qubit_depolarizing(0.99), ["cx"]
        )
        noisy = model.apply(QuantumCircuit(2).cx(0, 1))
        sites = noisy.noise_instructions()
        assert len(sites) == 1 and sites[0].qubits == (0, 1)

    def test_default_error(self):
        model = NoiseModel().set_default_error(depolarizing(0.999))
        circuit = QuantumCircuit(2).h(0).s(1)
        assert model.apply(circuit).num_noise_sites == 2

    def test_untouched_without_rules(self):
        noisy = NoiseModel().apply(QuantumCircuit(1).h(0))
        assert noisy.num_noise_sites == 0

    def test_noisy_gate_names(self):
        model = NoiseModel().add_all_qubit_quantum_error(
            depolarizing(0.9), ["cx", "h"]
        )
        assert model.noisy_gate_names == ["cx", "h"]
