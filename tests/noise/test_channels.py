"""Unit tests for Kraus channels."""

import numpy as np
import pytest

from repro.gates.standard import X_MATRIX, Y_MATRIX, Z_MATRIX
from repro.linalg import dagger, is_density_matrix, random_density_matrix
from repro.noise import (
    KrausChannel,
    amplitude_damping,
    bit_flip,
    bit_phase_flip,
    depolarizing,
    pauli_channel,
    phase_damping,
    phase_flip,
    two_qubit_depolarizing,
    unitary_channel,
)


class TestKrausChannelBasics:
    def test_needs_operators(self):
        with pytest.raises(ValueError):
            KrausChannel([])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            KrausChannel([np.eye(2), np.eye(4)])

    def test_cptp_validation(self):
        with pytest.raises(ValueError):
            KrausChannel([np.eye(2) * 2])

    def test_identity_channel(self):
        channel = unitary_channel(np.eye(2), "id")
        rho = np.diag([0.3, 0.7])
        assert np.allclose(channel.apply(rho), rho)

    def test_is_unitary_channel(self):
        assert unitary_channel(np.eye(2)).is_unitary_channel()
        assert not bit_flip(0.9).is_unitary_channel()


class TestCanonicalNoises:
    @pytest.mark.parametrize("factory", [
        bit_flip, phase_flip, bit_phase_flip, depolarizing,
        amplitude_damping, phase_damping,
    ])
    def test_cptp(self, factory):
        assert factory(0.9).is_cptp()

    @pytest.mark.parametrize("factory", [bit_flip, depolarizing])
    def test_probability_range(self, factory):
        with pytest.raises(ValueError):
            factory(1.5)

    def test_bit_flip_action(self):
        p = 0.8
        rho = np.diag([1.0, 0.0])
        out = bit_flip(p).apply(rho)
        assert np.allclose(out, np.diag([p, 1 - p]))

    def test_phase_flip_kills_coherence(self):
        rho = np.array([[0.5, 0.5], [0.5, 0.5]])
        out = phase_flip(0.5).apply(rho)  # fully dephasing at p=0.5
        assert np.allclose(out, np.diag([0.5, 0.5]))

    def test_bit_phase_flip_matches_y(self):
        p = 0.7
        rho = random_density_matrix(2, rng=np.random.default_rng(0))
        expected = p * rho + (1 - p) * Y_MATRIX @ rho @ Y_MATRIX
        assert np.allclose(bit_phase_flip(p).apply(rho), expected)

    def test_depolarizing_fixed_point(self):
        # The maximally mixed state is invariant.
        rho = np.eye(2) / 2
        assert np.allclose(depolarizing(0.7).apply(rho), rho)

    def test_depolarizing_paper_form(self):
        p = 0.9
        rho = random_density_matrix(2, rng=np.random.default_rng(1))
        q = (1 - p) / 3
        expected = p * rho + q * (
            X_MATRIX @ rho @ X_MATRIX
            + Y_MATRIX @ rho @ Y_MATRIX
            + Z_MATRIX @ rho @ Z_MATRIX
        )
        assert np.allclose(depolarizing(p).apply(rho), expected)

    def test_amplitude_damping_decays_excited(self):
        gamma = 0.3
        rho = np.diag([0.0, 1.0])  # |1><1|
        out = amplitude_damping(gamma).apply(rho)
        assert np.allclose(out, np.diag([gamma, 1 - gamma]))

    def test_pauli_channel_probabilities(self):
        channel = pauli_channel(0.1, 0.2, 0.3)
        assert channel.is_cptp()

    def test_pauli_channel_rejects_oversum(self):
        with pytest.raises(ValueError):
            pauli_channel(0.5, 0.4, 0.3)

    def test_two_qubit_depolarizing(self):
        channel = two_qubit_depolarizing(0.95)
        assert channel.num_qubits == 2
        assert channel.num_kraus == 16
        assert channel.is_cptp()


class TestMatrixRep:
    def test_matches_vectorised_action(self, rng):
        """M_E (row-stacking) applied to vec(rho) equals vec(E(rho))."""
        channel = depolarizing(0.9)
        rho = random_density_matrix(2, rng=rng)
        vec_out = channel.matrix_rep() @ rho.reshape(-1)
        assert np.allclose(vec_out.reshape(2, 2), channel.apply(rho))

    def test_paper_example_bit_flip(self):
        """Paper Example 4: M_N = p I(x)I + (1-p) X(x)X."""
        p = 0.9
        expected = p * np.eye(4) + (1 - p) * np.kron(X_MATRIX, X_MATRIX)
        assert np.allclose(bit_flip(p).matrix_rep(), expected)

    def test_unitary_channel_rep(self):
        u = np.diag([1, 1j])
        rep = unitary_channel(u).matrix_rep()
        assert np.allclose(rep, np.kron(u, np.conjugate(u)))


class TestChoi:
    def test_choi_is_density_matrix(self):
        choi = depolarizing(0.9).choi_matrix()
        assert is_density_matrix(choi, atol=1e-8)

    def test_identity_choi_is_maximally_entangled(self):
        choi = unitary_channel(np.eye(2)).choi_matrix()
        expected = np.zeros((4, 4), dtype=complex)
        for i in (0, 3):
            for j in (0, 3):
                expected[i, j] = 0.5
        assert np.allclose(choi, expected)

    def test_unnormalised_trace(self):
        choi = bit_flip(0.8).choi_matrix(normalised=False)
        assert np.isclose(np.trace(choi), 2.0)


class TestChannelAlgebra:
    def test_compose_probabilities(self):
        # Two bit flips compose into a bit flip with p' = p^2 + (1-p)^2.
        p = 0.9
        composed = bit_flip(p).compose(bit_flip(p))
        rho = np.diag([1.0, 0.0])
        p_eff = p * p + (1 - p) * (1 - p)
        assert np.allclose(
            composed.apply(rho), np.diag([p_eff, 1 - p_eff])
        )

    def test_tensor_width(self):
        channel = bit_flip(0.9).tensor(phase_flip(0.9))
        assert channel.num_qubits == 2
        assert channel.num_kraus == 4

    def test_dagger_of_unitary_channel(self):
        u = np.diag([1, 1j])
        adjoint = unitary_channel(u).dagger()
        assert np.allclose(adjoint.kraus_operators[0], dagger(u))

    def test_conjugate(self):
        conj = phase_flip(0.9).conjugate()
        for op, orig in zip(
            conj.kraus_operators, phase_flip(0.9).kraus_operators
        ):
            assert np.allclose(op, np.conjugate(orig))
