"""Unit tests for the TDD manager: construction, canonicity, operations."""

import numpy as np
import pytest

from repro.tdd import TddManager, round_weight


@pytest.fixture
def manager():
    return TddManager([f"x{i}" for i in range(6)])


class TestFromArray:
    def test_roundtrip(self, manager, rng):
        data = rng.normal(size=(2, 2, 2)) + 1j * rng.normal(size=(2, 2, 2))
        tdd = manager.from_array(data, ["x0", "x2", "x4"])
        assert np.allclose(tdd.to_array(["x0", "x2", "x4"]), data)

    def test_axis_order_independent(self, manager, rng):
        data = rng.normal(size=(2, 2))
        a = manager.from_array(data, ["x1", "x3"])
        b = manager.from_array(data.T, ["x3", "x1"])
        assert a.node is b.node and a.weight == b.weight

    def test_scalar(self, manager):
        tdd = manager.scalar(2.5j)
        assert tdd.is_scalar and tdd.scalar() == 2.5j

    def test_zero_tensor_canonical(self, manager):
        tdd = manager.from_array(np.zeros((2, 2)), ["x0", "x1"])
        assert tdd.is_scalar and tdd.scalar() == 0.0

    def test_unknown_label(self, manager):
        with pytest.raises(KeyError):
            manager.from_array(np.zeros(2), ["zz"])

    def test_duplicate_labels_rejected(self, manager):
        with pytest.raises(ValueError):
            manager.from_array(np.zeros((2, 2)), ["x0", "x0"])

    def test_non_binary_dimension(self, manager):
        with pytest.raises(ValueError):
            manager.from_array(np.zeros((3,)), ["x0"])

    def test_rank_mismatch(self, manager):
        with pytest.raises(ValueError):
            manager.from_array(np.zeros((2, 2)), ["x0"])


class TestCanonicity:
    def test_identical_tensors_share_node(self, manager, rng):
        data = rng.normal(size=(2, 2))
        a = manager.from_array(data, ["x0", "x1"])
        b = manager.from_array(data.copy(), ["x0", "x1"])
        assert a.node is b.node

    def test_scaled_tensor_shares_node(self, manager, rng):
        data = rng.normal(size=(2, 2)) + 0.5
        a = manager.from_array(data, ["x0", "x1"])
        b = manager.from_array(3.0 * data, ["x0", "x1"])
        assert a.node is b.node
        assert np.isclose(b.weight / a.weight, 3.0)

    def test_identity_tensor_node_count(self, manager):
        tdd = manager.from_array(np.eye(2), ["x0", "x1"])
        # identity = x0-node with two x1-children: 3 internal + terminal.
        assert tdd.num_nodes() <= 4

    def test_constant_tensor_is_terminal(self, manager):
        tdd = manager.from_array(np.full((2, 2), 5.0), ["x0", "x1"])
        assert tdd.is_scalar
        assert np.isclose(tdd.weight, 5.0)

    def test_weight_rounding(self):
        val = round_weight(complex(1e-15, -0.0))
        assert val == 0.0 and str(val.real) == "0.0"


class TestAdd:
    def test_matches_dense(self, manager, rng):
        a = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        b = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        ta = manager.from_array(a, ["x0", "x1"])
        tb = manager.from_array(b, ["x0", "x1"])
        assert np.allclose(ta.add(tb).to_array(["x0", "x1"]), a + b)

    def test_disjoint_supports_broadcast(self, manager, rng):
        a = rng.normal(size=2)
        b = rng.normal(size=2)
        ta = manager.from_array(a, ["x0"])
        tb = manager.from_array(b, ["x1"])
        total = ta.add(tb).to_array(["x0", "x1"])
        expected = a[:, None] + b[None, :]
        assert np.allclose(total, expected)

    def test_add_zero(self, manager, rng):
        a = rng.normal(size=(2, 2))
        ta = manager.from_array(a, ["x0", "x1"])
        tz = manager.from_array(np.zeros((2, 2)), ["x0", "x1"])
        assert ta.add(tz).node is ta.node

    def test_add_cancellation(self, manager, rng):
        a = rng.normal(size=(2, 2))
        ta = manager.from_array(a, ["x0", "x1"])
        tneg = manager.from_array(-a, ["x0", "x1"])
        assert ta.add(tneg).scalar() == 0.0

    def test_cross_manager_rejected(self, manager, rng):
        other = TddManager(["x0"])
        a = manager.from_array(rng.normal(size=2), ["x0"])
        b = other.from_array(rng.normal(size=2), ["x0"])
        with pytest.raises(ValueError):
            a.add(b)


class TestContract:
    def test_matrix_multiply(self, manager, rng):
        a = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        b = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        ta = manager.from_array(a, ["x0", "x1"])
        tb = manager.from_array(b, ["x1", "x2"])
        out = ta.contract(tb, ["x1"])
        assert np.allclose(out.to_array(["x0", "x2"]), a @ b)

    def test_hadamard_product_on_shared_unsummed(self, manager, rng):
        a = rng.normal(size=2)
        b = rng.normal(size=2)
        ta = manager.from_array(a, ["x0"])
        tb = manager.from_array(b, ["x0"])
        out = ta.contract(tb, [])
        assert np.allclose(out.to_array(["x0"]), a * b)

    def test_inner_product(self, manager, rng):
        a = rng.normal(size=(2, 2))
        b = rng.normal(size=(2, 2))
        ta = manager.from_array(a, ["x0", "x1"])
        tb = manager.from_array(b, ["x0", "x1"])
        out = ta.contract(tb, ["x0", "x1"])
        assert np.isclose(out.scalar(), np.sum(a * b))

    def test_free_summed_variable_gives_factor_two(self, manager, rng):
        # Summing over a variable absent from both operands doubles.
        a = rng.normal(size=2)
        ta = manager.from_array(a, ["x0"])
        tb = manager.scalar(1.0)
        out = ta.contract(tb, ["x5"])
        assert np.allclose(out.to_array(["x0"]), 2 * a)

    def test_outer_product(self, manager, rng):
        a = rng.normal(size=2)
        b = rng.normal(size=2)
        out = manager.from_array(a, ["x0"]).contract(
            manager.from_array(b, ["x3"]), []
        )
        assert np.allclose(
            out.to_array(["x0", "x3"]), np.outer(a, b)
        )

    def test_contract_with_zero(self, manager, rng):
        a = rng.normal(size=(2, 2))
        ta = manager.from_array(a, ["x0", "x1"])
        tz = manager.scalar(0.0)
        assert ta.contract(tz, ["x0", "x1"]).scalar() == 0.0


class TestComputedTables:
    def test_cache_hits_accumulate(self, manager, rng):
        a = rng.normal(size=(2, 2))
        b = rng.normal(size=(2, 2))
        ta = manager.from_array(a, ["x0", "x1"])
        tb = manager.from_array(b, ["x1", "x2"])
        ta.contract(tb, ["x1"])
        before = manager.stats["cont_cache_hits"]
        ta.contract(tb, ["x1"])
        assert manager.stats["cont_cache_hits"] > before

    def test_clear_computed_tables(self, manager, rng):
        a = rng.normal(size=(2, 2))
        ta = manager.from_array(a, ["x0", "x1"])
        tb = manager.from_array(a, ["x1", "x2"])
        ta.contract(tb, ["x1"])
        manager.clear_computed_tables()
        hits_before = manager.stats["cont_cache_hits"]
        ta.contract(tb, ["x1"])
        # After clearing, the top-level call cannot hit the cache.
        assert manager.stats["cont_cache_hits"] >= hits_before

    def test_extend_order(self, manager):
        manager.extend_order(["y0", "x0"])
        assert "y0" in manager.var_position
        assert manager.var_order.index("y0") == 6


class TestToArray:
    def test_superset_labels_broadcast(self, manager, rng):
        a = rng.normal(size=2)
        ta = manager.from_array(a, ["x1"])
        out = ta.to_array(["x0", "x1"])
        assert np.allclose(out, np.stack([a, a]))

    def test_missing_support_label_rejected(self, manager, rng):
        ta = manager.from_array(rng.normal(size=(2, 2)), ["x0", "x1"])
        with pytest.raises(ValueError):
            ta.to_array(["x0"])

    def test_axis_permutation(self, manager, rng):
        data = rng.normal(size=(2, 2))
        ta = manager.from_array(data, ["x0", "x1"])
        assert np.allclose(ta.to_array(["x1", "x0"]), data.T)
