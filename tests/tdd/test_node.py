"""Unit tests for TDD nodes and weight canonicalisation."""

import numpy as np

from repro.tdd import TERMINAL_VAR, TddManager, TddNode, count_nodes, round_weight


class TestRoundWeight:
    def test_collapses_negative_zero(self):
        val = round_weight(complex(-0.0, -0.0))
        assert str(val.real) == "0.0" and str(val.imag) == "0.0"

    def test_rounds_jitter(self):
        assert round_weight(1 + 1e-14j) == 1.0

    def test_preserves_significant_digits(self):
        assert round_weight(0.123456789012 + 0j) == 0.123456789012


class TestTerminal:
    def test_terminal_flag(self):
        node = TddNode(TERMINAL_VAR)
        assert node.is_terminal

    def test_cofactors_of_non_testing_node(self):
        manager = TddManager(["a", "b"])
        weight, node = manager.make_node(
            1, (1.0, manager.terminal), (2.0, manager.terminal)
        )
        # Node tests var 1; cofactor w.r.t. var 0 returns the node itself.
        (lw, ln), (hw, hn) = node.cofactors(0)
        assert ln is node and hn is node and lw == hw == 1.0


class TestCountNodes:
    def test_terminal_only(self):
        manager = TddManager(["a"])
        assert count_nodes(manager.terminal) == 1

    def test_shared_subgraphs_counted_once(self):
        manager = TddManager(["a", "b"])
        # f(a,b) = b on both branches of a -> the b-node is shared but the
        # a-node is redundant and skipped by reduction.
        tdd = manager.from_array(np.array([[0, 1], [0, 1]]), ["a", "b"])
        assert tdd.num_nodes() == 2  # b-node + terminal


class TestMakeNode:
    def test_zero_edges_collapse(self):
        manager = TddManager(["a"])
        weight, node = manager.make_node(
            0, (0.0, manager.terminal), (0.0, manager.terminal)
        )
        assert weight == 0.0 and node is manager.terminal

    def test_redundant_node_skipped(self):
        manager = TddManager(["a"])
        weight, node = manager.make_node(
            0, (2.0, manager.terminal), (2.0, manager.terminal)
        )
        assert node is manager.terminal and weight == 2.0

    def test_normalisation_by_larger_magnitude(self):
        manager = TddManager(["a"])
        weight, node = manager.make_node(
            0, (1.0, manager.terminal), (-3.0, manager.terminal)
        )
        assert np.isclose(weight, -3.0)
        assert np.isclose(node.high_weight, 1.0)
        assert np.isclose(node.low_weight, -1 / 3)

    def test_hash_consing(self):
        manager = TddManager(["a"])
        _, n1 = manager.make_node(
            0, (1.0, manager.terminal), (2.0, manager.terminal)
        )
        _, n2 = manager.make_node(
            0, (2.0, manager.terminal), (4.0, manager.terminal)
        )
        assert n1 is n2
