"""Unit tests for TDD Graphviz export and profiling helpers."""

import numpy as np

from repro.tdd import TddManager, node_count_by_level, to_dot


def sample_tdd():
    manager = TddManager(["a", "b"])
    data = np.array([[1.0, 0.0], [0.5, 1j]])
    return manager.from_array(data, ["a", "b"])


class TestToDot:
    def test_contains_header_and_terminal(self):
        dot = to_dot(sample_tdd())
        assert dot.startswith("digraph tdd {")
        assert 'shape=box, label="1"' in dot
        assert dot.rstrip().endswith("}")

    def test_variable_labels_present(self):
        dot = to_dot(sample_tdd())
        assert 'label="a"' in dot
        assert 'label="b"' in dot

    def test_low_edges_dashed(self):
        dot = to_dot(sample_tdd())
        assert "style=dashed" in dot
        assert "style=solid" in dot

    def test_scalar_diagram(self):
        manager = TddManager(["a"])
        dot = to_dot(manager.scalar(2.0))
        assert 'label="2"' in dot

    def test_complex_weight_formatting(self):
        manager = TddManager(["a"])
        tdd = manager.from_array(np.array([1.0, 1j]), ["a"])
        dot = to_dot(tdd)
        assert "1i" in dot


class TestNodeCounts:
    def test_levels(self):
        counts = node_count_by_level(sample_tdd())
        assert counts["a"] == 1
        assert counts["b"] >= 1

    def test_scalar_has_no_levels(self):
        manager = TddManager(["a"])
        assert node_count_by_level(manager.scalar(1.0)) == {}
