"""Unit tests for TDD network contraction."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.library import bernstein_vazirani, qft
from repro.tdd import TddManager, contract_network, contract_network_scalar
from repro.tensornet import (
    ContractionStats,
    TensorNetwork,
    Tensor,
    circuit_to_network,
    close_trace,
)


class TestScalarAgreementWithDense:
    @pytest.mark.parametrize("build", [
        lambda: QuantumCircuit(2).h(0).cx(0, 1),
        lambda: qft(3),
        lambda: bernstein_vazirani(4),
        lambda: QuantumCircuit(3).h(0).cx(0, 1).t(1).cx(1, 2).s(2),
    ])
    def test_closed_trace(self, build):
        circuit = build()
        net = close_trace(circuit_to_network(circuit))
        dense = net.contract_scalar()
        tdd_val = contract_network_scalar(net)
        assert np.isclose(tdd_val, dense)

    def test_with_self_loop_tensor(self, rng):
        data = rng.normal(size=(2, 2, 2))
        net = TensorNetwork([
            Tensor(data, ["a", "a", "b"]),
            Tensor(rng.normal(size=2), ["b"]),
        ])
        assert np.isclose(
            contract_network_scalar(net), net.contract_scalar()
        )

    def test_disconnected_components(self, rng):
        a = rng.normal(size=(2, 2))
        b = rng.normal(size=(2, 2))
        net = TensorNetwork([
            Tensor(a, ["i", "j"]), Tensor(a, ["j", "i"]),
            Tensor(b, ["k", "l"]), Tensor(b, ["l", "k"]),
        ])
        assert np.isclose(
            contract_network_scalar(net), net.contract_scalar()
        )


class TestOpenNetworks:
    def test_open_legs_preserved(self, rng):
        a = rng.normal(size=(2, 2))
        b = rng.normal(size=(2, 2))
        net = TensorNetwork([
            Tensor(a, ["i", "j"]), Tensor(b, ["j", "k"]),
        ])
        result = contract_network(net)
        assert result.support_labels() == {"i", "k"}
        assert np.allclose(result.to_array(["i", "k"]), a @ b)

    def test_scalar_on_open_network_fails(self, rng):
        net = TensorNetwork([Tensor(rng.normal(size=2), ["i"])])
        with pytest.raises(ValueError):
            contract_network_scalar(net)


class TestManagerReuse:
    def test_shared_manager_across_contractions(self):
        circuit = qft(3)
        net = close_trace(circuit_to_network(circuit))
        manager = TddManager(net.all_indices())
        v1 = contract_network_scalar(net, manager=manager)
        hits_before = manager.stats["cont_cache_hits"]
        v2 = contract_network_scalar(net, manager=manager)
        assert np.isclose(v1, v2)
        assert manager.stats["cont_cache_hits"] > hits_before

    def test_stats_max_nodes_positive(self):
        circuit = qft(3)
        net = close_trace(circuit_to_network(circuit))
        stats = ContractionStats()
        contract_network_scalar(net, stats=stats)
        assert stats.max_nodes >= 2
