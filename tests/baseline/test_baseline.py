"""Unit tests for the dense Qiskit-style baseline."""

import numpy as np
import pytest

from repro.baseline import (
    MemoryLimitExceeded,
    Operator,
    SuperOp,
    average_gate_fidelity,
    estimate_superop_bytes,
    process_fidelity,
    process_fidelity_choi,
)
from repro.circuits import QuantumCircuit
from repro.core import jamiolkowski_fidelity_dense
from repro.library import qft
from repro.noise import bit_flip, depolarizing, insert_random_noise


class TestOperator:
    def test_from_circuit(self):
        op = Operator(QuantumCircuit(1).h(0))
        assert op.dim == 2 and op.is_unitary()

    def test_adjoint_compose_identity(self):
        op = Operator(qft(2))
        composed = op.compose(op.adjoint())
        assert np.allclose(composed.data, np.eye(4), atol=1e-10)

    def test_tensor(self):
        a = Operator(np.eye(2))
        b = Operator(np.diag([1, -1]))
        assert a.tensor(b).dim == 4

    def test_equiv_up_to_phase(self):
        op = Operator(qft(2))
        shifted = Operator(np.exp(0.3j) * op.data)
        assert op.equiv(shifted)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            Operator(np.zeros((2, 3)))


class TestSuperOp:
    def test_identity_circuit(self):
        sop = SuperOp(QuantumCircuit(2))
        assert np.allclose(sop.data, np.eye(16))

    def test_matches_reference_superoperator(self):
        from repro.noise import circuit_superoperator_matrix

        circuit = QuantumCircuit(2).h(0)
        circuit.append(depolarizing(0.9), [0])
        circuit.cx(0, 1)
        sop = SuperOp(circuit)
        assert np.allclose(sop.data, circuit_superoperator_matrix(circuit))

    def test_trace_preserving(self):
        circuit = QuantumCircuit(2).h(0)
        circuit.append(bit_flip(0.8), [1])
        assert SuperOp(circuit).is_trace_preserving()

    def test_choi_normalised_trace(self):
        circuit = QuantumCircuit(1).h(0)
        choi = SuperOp(circuit).to_choi(normalised=True)
        assert np.isclose(np.trace(choi).real, 1.0)

    def test_compose(self):
        a = SuperOp(QuantumCircuit(1).x(0))
        b = SuperOp(QuantumCircuit(1).h(0))
        composed = a.compose(b)
        direct = SuperOp(QuantumCircuit(1).x(0).h(0))
        assert np.allclose(composed.data, direct.data)

    def test_memory_guard_triggers(self):
        with pytest.raises(MemoryLimitExceeded):
            SuperOp(QuantumCircuit(7), memory_limit_bytes=8 * 1024**3)

    def test_memory_guard_passes_small(self):
        SuperOp(QuantumCircuit(3), memory_limit_bytes=8 * 1024**3)

    def test_estimate_monotone(self):
        assert estimate_superop_bytes(7) > estimate_superop_bytes(6)

    def test_from_matrix(self):
        mat = np.eye(16)
        sop = SuperOp(mat)
        assert sop.num_qubits == 2


class TestProcessFidelity:
    def test_noiseless_is_one(self):
        circuit = qft(3)
        assert np.isclose(process_fidelity(circuit, circuit), 1.0)

    def test_matches_core_definition(self):
        ideal = qft(3)
        noisy = insert_random_noise(ideal, 3, seed=21)
        baseline = process_fidelity(noisy, ideal)
        reference = jamiolkowski_fidelity_dense(noisy, ideal)
        assert np.isclose(baseline, reference, atol=1e-9)

    def test_identity_target_default(self):
        circuit = QuantumCircuit(1)
        circuit.append(bit_flip(0.9), [0])
        assert np.isclose(process_fidelity(circuit), 0.9, atol=1e-9)

    def test_operator_target(self):
        ideal = qft(2)
        noisy = insert_random_noise(ideal, 1, seed=3)
        f1 = process_fidelity(noisy, ideal)
        f2 = process_fidelity(noisy, Operator(ideal))
        assert np.isclose(f1, f2)

    def test_choi_path_agrees(self):
        ideal = qft(2)
        noisy = insert_random_noise(ideal, 2, seed=3)
        f_fast = process_fidelity(noisy, ideal)
        f_choi = process_fidelity_choi(noisy, ideal)
        assert np.isclose(f_fast, f_choi, atol=1e-7)

    def test_type_error(self):
        with pytest.raises(TypeError):
            process_fidelity("not a circuit")

    def test_memory_limit_propagates(self):
        with pytest.raises(MemoryLimitExceeded):
            process_fidelity(
                QuantumCircuit(8),
                QuantumCircuit(8),
                memory_limit_bytes=8 * 1024**3,
            )


class TestAverageGateFidelity:
    def test_relation_to_process_fidelity(self):
        circuit = QuantumCircuit(1)
        circuit.append(depolarizing(0.9), [0])
        fpro = process_fidelity(circuit)
        favg = average_gate_fidelity(circuit)
        assert np.isclose(favg, (2 * fpro + 1) / 3)
