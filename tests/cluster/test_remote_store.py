"""RemoteStore against a live in-thread cache server, and fail-open.

The contract under test: a reachable server behaves like any other
:class:`~repro.cache.store.CacheStore` tier; an unreachable one turns
every ``get`` into a miss and every ``put`` into a no-op — a check must
succeed at local speed with the cache fleet completely down, and the
only trace is ``repro_remote_failures_total``.
"""

import pytest

from repro import CheckRequest, CircuitSpec, Engine, NoiseSpec
from repro.api.errors import RemoteUnavailableError
from repro.cache import CheckCache
from repro.cluster import (
    RemoteStore,
    counters_snapshot,
    metric_counters,
    resolve_cache_url,
)

from cluster_helpers import free_port, start_cache_server


def library_request(seed=0, **config):
    return CheckRequest(
        ideal=CircuitSpec.from_library("qft", num_qubits=3),
        noise=NoiseSpec(noises=2, seed=seed),
        epsilon=0.05,
        config=config,
    )


class TestRoundTrip:
    def test_get_put_hit_miss_and_stats(self, cache_server):
        store = RemoteStore(cache_server.url)
        try:
            assert store.get("plan-aa11") is None
            store.put("plan-aa11", b"blob-bytes")
            assert store.get("plan-aa11") == b"blob-bytes"

            stats = store.stats()
            assert stats.store == "remote"
            assert stats.entries == 1
            # server-side size includes the disk tier's framing overhead
            assert stats.total_bytes >= len(b"blob-bytes")
            assert (stats.hits, stats.misses) == (1, 1)
            assert stats.directory == cache_server.url
            assert store.directory is None  # no local path to report

            counters = counters_snapshot()
            assert counters["remote_cache_hits"] == 1
            assert counters["remote_cache_misses"] == 1
            assert counters["remote_cache_puts"] == 1
            assert counters["remote_failures"] == 0
        finally:
            store.close()

    def test_ping_and_server_request_counters(self, cache_server):
        store = RemoteStore(cache_server.url)
        try:
            assert store.ping()
            store.get("result-bb22")
            record = store.server_stats()
            assert record["requests"]["get"] == 1
            assert record["requests"]["ping"] == 1
            assert record["requests"]["errors"] == 0
        finally:
            store.close()

    def test_clear_and_prune(self, cache_server):
        store = RemoteStore(cache_server.url)
        try:
            store.put("plan-one", b"x" * 100)
            store.put("plan-two", b"y" * 100)
            assert store.prune(150) == 1
            assert store.stats().entries == 1
            assert store.clear() == 1
            assert store.stats().entries == 0
            with pytest.raises(ValueError):
                store.prune(-1)
        finally:
            store.close()

    def test_hostile_keys_never_reach_the_disk(self, cache_server, tmp_path):
        """Path-traversal-shaped keys are rejected server-side."""
        store = RemoteStore(cache_server.url)
        try:
            store.put("../../../etc/passwd", b"evil")  # swallowed
            assert store.get("../../../etc/passwd") is None
            assert store.stats().entries == 0
            assert not (tmp_path / "etc").exists()
        finally:
            store.close()


class TestTieredComposition:
    def test_remote_tier_shares_entries_across_local_caches(
        self, cache_server, tmp_path
    ):
        one = CheckCache.open(tmp_path / "host-a", cache_url=cache_server.url)
        assert one.remote is not None
        one.store.put("result-shared", b"payload")

        # a different machine (fresh local tiers, same server)
        two = CheckCache.open(tmp_path / "host-b", cache_url=cache_server.url)
        assert two.store.get("result-shared") == b"payload"
        # ... and the hit was promoted into host-b's local tiers
        tier_stats = two.store.stats().tiers
        assert [t.store for t in tier_stats] == ["memory", "disk", "remote"]
        assert all(t.entries == 1 for t in tier_stats)

    def test_env_resolution(self, cache_server, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_URL", cache_server.url)
        cache = CheckCache.open(tmp_path / "local")
        assert cache.cache_url == cache_server.url
        assert cache.remote is not None
        assert cache.plans.cache_url == cache_server.url

    def test_empty_string_forces_local_despite_env(
        self, cache_server, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_URL", cache_server.url)
        cache = CheckCache.open(tmp_path / "local", cache_url="")
        assert cache.remote is None
        assert cache.cache_url is None

    def test_resolve_cache_url_blank_values(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_URL", raising=False)
        assert resolve_cache_url(None) is None
        assert resolve_cache_url("  ") is None
        monkeypatch.setenv("REPRO_CACHE_URL", " host:1234 ")
        assert resolve_cache_url(None) == "host:1234"


class TestFailOpen:
    def test_dead_server_degrades_to_miss_and_noop(self):
        store = RemoteStore(
            f"127.0.0.1:{free_port()}",
            connect_timeout=0.25, retries=0,
        )
        assert store.get("plan-aa") is None
        store.put("plan-aa", b"x")  # must not raise
        assert not store.ping()
        counters = counters_snapshot()
        assert counters["remote_failures"] == 3
        assert counters["remote_cache_misses"] == 1
        assert metric_counters()["repro_remote_failures_total"] == 3

    def test_fail_closed_raises_typed_error(self):
        store = RemoteStore(
            f"127.0.0.1:{free_port()}",
            connect_timeout=0.25, retries=0, fail_open=False,
        )
        with pytest.raises(RemoteUnavailableError) as err:
            store.stats()
        assert err.value.code == "remote_unavailable"
        assert err.value.details["url"] == store.url

    def test_retry_redials_across_a_server_restart(self, tmp_path):
        directory = tmp_path / "remote-tier"
        first = start_cache_server(cache_dir=directory)
        port = first.port
        store = RemoteStore(first.url)  # default: one retry
        try:
            store.put("plan-persist", b"payload")
            first.stop()
            # same port, fresh process-equivalent; the client's socket
            # is now stale and the first attempt fails
            second = start_cache_server(cache_dir=directory, port=port)
            try:
                assert store.get("plan-persist") == b"payload"
            finally:
                second.stop()
        finally:
            store.close()

    def test_check_succeeds_with_cache_fleet_down(self):
        """End to end: a dead cache server costs a counter, not a check."""
        engine = Engine(
            cache=True, cache_url=f"127.0.0.1:{free_port()}"
        )
        try:
            response = engine.check(library_request())
        finally:
            engine.close()
        assert response.ok
        assert response.equivalent
        assert metric_counters()["repro_remote_failures_total"] > 0

    def test_warm_check_hits_the_remote_tier(self, cache_server, tmp_path):
        """Two engines, separate local caches, one shared server: the
        second engine's identical check is served from the remote tier."""
        request = library_request()
        cold = Engine(
            cache=True, cache_dir=str(tmp_path / "a"),
            cache_url=cache_server.url,
        )
        try:
            first = cold.check(request)
        finally:
            cold.close()
        warm = Engine(
            cache=True, cache_dir=str(tmp_path / "b"),
            cache_url=cache_server.url,
        )
        try:
            second = warm.check(request)
        finally:
            warm.close()
        assert second.equivalent == first.equivalent
        assert second.fidelity == first.fidelity
        assert second.stats.result_cache_hit == 1
        assert counters_snapshot()["remote_cache_hits"] >= 1
