"""Fault injection on the wire: damage degrades, it never raises.

A hostile or broken peer — garbage magic, truncated frames, connections
dropped mid-read, a server restarting under a running batch — must cost
at most a recompute.  Nothing in this module is allowed to raise out of
a cache lookup or a check.
"""

import socket
import threading

import pytest

from repro import CheckRequest, CircuitSpec, Engine, NoiseSpec
from repro.api.errors import WorkerLostError
from repro.cluster import RemoteStore, counters_snapshot
from repro.cluster.protocol import (
    MAGIC,
    MAX_FRAME_BYTES,
    OP_HIT,
    OP_OK,
    _HEADER,
    encode_frame,
)

from cluster_helpers import start_cache_server


class ScriptedServer:
    """A TCP peer that answers each connection with scripted raw bytes.

    Each accepted connection consumes one script entry: the server
    reads whatever the client sent (best effort) and replies with the
    entry's bytes verbatim — which lets tests inject every flavour of
    frame damage without touching the real server.
    """

    def __init__(self, replies):
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.url = f"127.0.0.1:{self.sock.getsockname()[1]}"
        self.replies = list(replies)
        self.connections = 0
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        for reply in self.replies:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            self.connections += 1
            try:
                conn.settimeout(2.0)
                try:
                    conn.recv(1 << 16)
                except OSError:
                    pass
                if reply:
                    conn.sendall(reply)
            finally:
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                conn.close()

    def close(self):
        self.sock.close()
        self._thread.join(timeout=2.0)


def scripted_store(server, **kwargs):
    kwargs.setdefault("connect_timeout", 0.5)
    kwargs.setdefault("timeout", 1.0)
    kwargs.setdefault("retries", 1)
    kwargs.setdefault("backoff", 0.0)
    return RemoteStore(server.url, **kwargs)


def library_request(seed=0):
    return CheckRequest(
        ideal=CircuitSpec.from_library("qft", num_qubits=3),
        noise=NoiseSpec(noises=2, seed=seed),
        epsilon=0.05,
    )


DAMAGE = {
    "garbage-magic": b"XXXXX" + encode_frame(OP_HIT, b"data")[len(MAGIC):],
    "truncated-header": encode_frame(OP_HIT, b"data")[:4],
    "truncated-payload": encode_frame(OP_HIT, b"a-longer-payload")[:-5],
    "oversize-length": _HEADER.pack(MAGIC, OP_HIT, MAX_FRAME_BYTES + 1),
    "drop-without-reply": b"",
}


class TestCacheClientSurvivesDamage:
    @pytest.mark.parametrize("kind", sorted(DAMAGE))
    def test_get_degrades_to_miss(self, kind):
        # one damaged reply per attempt (initial + one retry)
        server = ScriptedServer([DAMAGE[kind]] * 2)
        store = scripted_store(server)
        try:
            assert store.get("plan-abc") is None
            counters = counters_snapshot()
            assert counters["remote_failures"] == 1
            assert counters["remote_cache_misses"] == 1
        finally:
            store.close()
            server.close()
        assert server.connections == 2  # retried on a fresh dial

    @pytest.mark.parametrize("kind", sorted(DAMAGE))
    def test_put_degrades_to_noop(self, kind):
        server = ScriptedServer([DAMAGE[kind]] * 2)
        store = scripted_store(server)
        try:
            store.put("plan-abc", b"payload")  # must not raise
            counters = counters_snapshot()
            assert counters["remote_failures"] == 1
            assert counters["remote_cache_puts"] == 0
        finally:
            store.close()
            server.close()

    def test_damage_then_recovery_on_retry(self):
        """One truncated reply, then a clean OK: the retry dial wins."""
        server = ScriptedServer([
            DAMAGE["truncated-payload"], encode_frame(OP_OK),
        ])
        store = scripted_store(server)
        try:
            store.put("plan-abc", b"payload")
            counters = counters_snapshot()
            assert counters["remote_cache_puts"] == 1
            assert counters["remote_failures"] == 0  # attempt-level only
        finally:
            store.close()
            server.close()

    def test_unexpected_opcode_counts_as_miss(self):
        """A well-framed but nonsensical reply is a miss, not an error."""
        server = ScriptedServer([encode_frame(OP_OK, b"??")])
        store = scripted_store(server, retries=0)
        try:
            assert store.get("plan-abc") is None
            assert counters_snapshot()["remote_cache_misses"] == 1
            assert counters_snapshot()["remote_failures"] == 0
        finally:
            store.close()
            server.close()


class TestWorkerClientSurvivesDamage:
    @pytest.mark.parametrize("kind", sorted(DAMAGE))
    def test_damage_is_a_lost_worker_not_a_crash(
        self, kind, sliced_workload
    ):
        """Every damaged exchange surfaces as the one typed error the
        dispatch loop knows how to handle."""
        from repro.cluster import WorkerClient

        network, plan = sliced_workload
        server = ScriptedServer([DAMAGE[kind]])
        client = WorkerClient(
            server.url, connect_timeout=0.5, heartbeat_grace=1.0
        )
        try:
            with pytest.raises(WorkerLostError):
                client.run_chunk({}, "digest", b"blob", [{}], False)
        finally:
            client.close()
            server.close()


class TestServerRestartMidBatch:
    def test_checks_ride_through_a_cache_server_restart(self, tmp_path):
        """Batch of checks with the cache server dying and coming back
        mid-way: every check succeeds; the outage is a counter."""
        directory = tmp_path / "remote-tier"
        server = start_cache_server(cache_dir=directory)
        port = server.port
        engine = Engine(
            cache=True, cache_dir=str(tmp_path / "local"),
            cache_url=server.url,
        )
        try:
            first = engine.check(library_request(seed=0))
            assert first.ok

            server.stop()  # the fleet's cache tier vanishes mid-batch
            during = engine.check(library_request(seed=1))
            assert during.ok
            assert counters_snapshot()["remote_failures"] > 0

            server = start_cache_server(cache_dir=directory, port=port)
            after = engine.check(library_request(seed=2))
            assert after.ok
            # the revived server sees traffic again (lazy re-dial)
            assert engine.check(library_request(seed=0)).ok
        finally:
            engine.close()
            server.stop()
