"""RemoteSliceExecutor against in-thread workers: agreement and faults.

Worker *death* here is simulated with peers that are reachable but
silent (heartbeat-grace expiry) or protocol-hostile — the in-process
servers cannot ``os._exit`` without taking the test runner with them.
Real process death (``REPRO_WORKER_EXIT_AFTER``) is exercised by the
subprocess fleet in ``test_fleet.py``.
"""

import socket
import threading

import numpy as np
import pytest

from repro.api.errors import WorkerLostError
from repro.backends import get_backend
from repro.cluster import (
    RemoteSliceExecutor,
    WorkerClient,
    counters_snapshot,
    resolve_workers,
)
from repro.parallel import SerialExecutor
from repro.tensornet import ContractionStats, build_plan

from cluster_helpers import BACKENDS, free_port, start_worker


class SilentPeer:
    """Accepts connections and never says a word — the straggler/dead
    worker the heartbeat grace exists to detect."""

    def __init__(self):
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.url = f"127.0.0.1:{self.sock.getsockname()[1]}"
        self._conns = []
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            self._conns.append(conn)  # hold open, never reply

    def close(self):
        self.sock.close()
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass


def remote(workers, **kwargs):
    kwargs.setdefault("connect_timeout", 0.5)
    kwargs.setdefault("heartbeat_grace", 1.0)
    return RemoteSliceExecutor([w.url for w in workers], **kwargs)


class TestConfiguration:
    def test_needs_at_least_one_worker(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        with pytest.raises(ValueError, match="at least one worker"):
            RemoteSliceExecutor(None)
        with pytest.raises(ValueError, match="at least one worker"):
            RemoteSliceExecutor(" , ")

    def test_addresses_validated_eagerly(self):
        with pytest.raises(ValueError):
            RemoteSliceExecutor("host:notaport")

    def test_resolve_workers_forms(self, monkeypatch):
        assert resolve_workers("a:1, b:2,") == ("a:1", "b:2")
        assert resolve_workers(["a:1", "b:2"]) == ("a:1", "b:2")
        monkeypatch.setenv("REPRO_WORKERS", "c:3")
        assert resolve_workers(None) == ("c:3",)
        monkeypatch.setenv("REPRO_WORKERS", "")
        assert resolve_workers(None) is None

    def test_jobs_is_fleet_size(self, worker_pair):
        executor = remote(worker_pair)
        assert executor.jobs == 2
        executor.close()


class TestAgreement:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_matches_serial_execution(
        self, sliced_workload, reference, worker_pair, backend_name
    ):
        network, plan = sliced_workload
        executor = remote(worker_pair, chunk_size=3)
        try:
            backend = get_backend(backend_name, executor=executor)
            stats = ContractionStats()
            value = backend.contract_scalar(network, plan=plan, stats=stats)
        finally:
            executor.close()
        assert np.isclose(value, reference, atol=1e-9)
        assert stats.slice_count == plan.num_slices()
        counters = counters_snapshot()
        assert counters["remote_chunks"] > 0
        assert counters["remote_fallback_chunks"] == 0
        assert counters["remote_workers_lost"] == 0

    def test_deterministic_across_fleet_scheduling(
        self, sliced_workload, worker_pair
    ):
        """The chunk-index-order reduce makes repeated runs bit-equal,
        however the two workers raced."""
        network, plan = sliced_workload
        executor = remote(worker_pair, chunk_size=2)
        try:
            backend = get_backend("dense", executor=executor)
            first = backend.contract_scalar(network, plan=plan)
            second = backend.contract_scalar(network, plan=plan)
        finally:
            executor.close()
        assert first == second

    def test_single_slice_runs_inline(
        self, sliced_workload, reference, worker_pair
    ):
        """An unsliced plan never touches the network."""
        network, _ = sliced_workload
        plan = build_plan(network)
        assert plan.num_slices() == 1
        executor = remote(worker_pair)
        try:
            backend = get_backend("dense", executor=executor)
            value = backend.contract_scalar(network, plan=plan)
        finally:
            executor.close()
        assert np.isclose(value, reference, atol=1e-9)
        assert counters_snapshot()["remote_chunks"] == 0


class TestPayloadInstallation:
    def test_payload_ships_once_per_worker(
        self, sliced_workload, worker_pair
    ):
        """Chunks after the first name only the digest; the single-entry
        worker blob cache holds exactly the installed payload."""
        network, plan = sliced_workload
        executor = remote(worker_pair, chunk_size=1)  # many chunks
        try:
            backend = get_backend("dense", executor=executor)
            backend.contract_scalar(network, plan=plan)
            client_digests = [
                client._installed for client in executor._clients
            ]
            assert all(len(seen) == 1 for seen in client_digests)
            for worker in worker_pair:
                assert len(worker.server._blobs) <= 1
        finally:
            executor.close()

    def test_worker_restart_triggers_need_blob_reinstall(
        self, sliced_workload, reference
    ):
        """A worker that forgot the payload (evicted by a different
        contraction) answers NEED_BLOB and the client re-installs in
        place — no failed chunk, no redispatch."""
        worker = start_worker()
        try:
            network, plan = sliced_workload
            other_plan = build_plan(network)  # a second, distinct digest
            executor = RemoteSliceExecutor(
                [worker.url], chunk_size=2, heartbeat_grace=5.0
            )
            try:
                backend = get_backend("dense", executor=executor)
                first = backend.contract_scalar(network, plan=plan)
                # evict plan's blob from the single-entry worker cache
                # by hand-installing a different digest
                client = executor._clients[0]
                client._install("deadbeef", b"not-a-real-payload")
                # the client still believes plan's digest is installed:
                # the worker must answer NEED_BLOB and recover
                again = backend.contract_scalar(network, plan=plan)
            finally:
                executor.close()
            assert first == again
            assert np.isclose(first, reference, atol=1e-9)
            assert counters_snapshot()["remote_workers_lost"] == 0
        finally:
            worker.stop()


class TestWorkerLoss:
    def test_silent_worker_chunks_redispatch_to_survivor(
        self, sliced_workload, reference
    ):
        silent = SilentPeer()
        healthy = start_worker()
        try:
            network, plan = sliced_workload
            executor = RemoteSliceExecutor(
                [silent.url, healthy.url],
                chunk_size=2, connect_timeout=0.5, heartbeat_grace=0.6,
            )
            try:
                backend = get_backend("dense", executor=executor)
                value = backend.contract_scalar(network, plan=plan)
            finally:
                executor.close()
            assert np.isclose(value, reference, atol=1e-9)
            counters = counters_snapshot()
            assert counters["remote_workers_lost"] == 1
            assert counters["remote_redispatches"] == 1
            assert counters["remote_fallback_chunks"] == 0
        finally:
            healthy.stop()
            silent.close()

    def test_empty_pool_falls_back_locally(self, sliced_workload, reference):
        network, plan = sliced_workload
        executor = RemoteSliceExecutor(
            [f"127.0.0.1:{free_port()}"],
            chunk_size=2, connect_timeout=0.25,
        )
        backend = get_backend("dense", executor=executor)
        stats = ContractionStats()
        value = backend.contract_scalar(network, plan=plan, stats=stats)
        assert np.isclose(value, reference, atol=1e-9)
        assert stats.slice_count == plan.num_slices()
        counters = counters_snapshot()
        assert counters["remote_workers_lost"] == 1
        assert counters["remote_fallback_chunks"] > 0
        assert counters["remote_chunks"] == 0

    def test_local_fallback_disabled_surfaces_worker_lost(
        self, sliced_workload
    ):
        network, plan = sliced_workload
        executor = RemoteSliceExecutor(
            [f"127.0.0.1:{free_port()}"],
            chunk_size=2, connect_timeout=0.25, local_fallback=False,
        )
        backend = get_backend("dense", executor=executor)
        with pytest.raises(WorkerLostError) as err:
            backend.contract_scalar(network, plan=plan)
        assert err.value.code == "worker_lost"

    def test_worker_client_ping(self, worker_pair):
        client = WorkerClient(worker_pair[0].url, connect_timeout=0.5)
        assert client.ping()
        client.close()
        dead = WorkerClient(
            f"127.0.0.1:{free_port()}", connect_timeout=0.25
        )
        assert not dead.ping()


class TestStatsAndTracing:
    def test_measured_stats_fold_back(self, sliced_workload, worker_pair):
        network, plan = sliced_workload
        executor = remote(worker_pair, chunk_size=3)
        try:
            backend = get_backend("tdd", executor=executor)
            stats = ContractionStats()
            backend.contract_scalar(network, plan=plan, stats=stats)
        finally:
            executor.close()
        serial_stats = ContractionStats()
        get_backend("tdd", executor=SerialExecutor()).contract_scalar(
            network, plan=plan, stats=serial_stats
        )
        assert stats.slice_count == serial_stats.slice_count
        assert stats.predicted_cost == serial_stats.predicted_cost

    def test_remote_spans_fold_into_the_trace(
        self, sliced_workload, worker_pair
    ):
        from repro import trace

        network, plan = sliced_workload
        executor = remote(worker_pair, chunk_size=3)
        recorder = trace.TraceRecorder()
        try:
            backend = get_backend("dense", executor=executor)
            with trace.recording(recorder):
                backend.contract_scalar(network, plan=plan)
        finally:
            executor.close()
        names = [span.name for span in recorder.spans]
        assert "slices.remote.dispatch" in names
        dispatch = next(
            span for span in recorder.spans
            if span.name == "slices.remote.dispatch"
        )
        assert dispatch.attributes["workers"] == 2
        # worker-side chunk spans folded back with their origin labelled
        chunk_spans = [
            span for span in recorder.spans
            if "worker" in span.attributes and "chunk" in span.attributes
        ]
        assert chunk_spans
        assert all(
            span.attributes["worker"] != "local" for span in chunk_spans
        )
