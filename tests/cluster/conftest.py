"""Shared fixtures for the cluster subsystem tests.

Every server here runs *in this process* on a background event loop
(:class:`~repro.cluster.threads.ServerThread`) — fast, deterministic
teardown, no subprocess management.  The subprocess-based simulated
fleet lives in ``test_fleet.py``.
"""

import pytest

from repro.backends import get_backend
from repro.cluster import reset_counters
from repro.core.miter import algorithm_network
from repro.library import qft
from repro.noise import insert_random_noise
from repro.tensornet import build_plan, slice_plan

from cluster_helpers import start_cache_server, start_worker


@pytest.fixture(autouse=True)
def _fresh_cluster_counters():
    """The cluster counters are process-global; isolate per-test deltas."""
    reset_counters()
    yield
    reset_counters()


@pytest.fixture
def cache_server(tmp_path):
    handle = start_cache_server(cache_dir=tmp_path / "remote-tier")
    try:
        yield handle
    finally:
        handle.stop()


@pytest.fixture
def worker_pair():
    workers = [start_worker(), start_worker()]
    try:
        yield workers
    finally:
        for worker in workers:
            worker.stop()


@pytest.fixture(scope="module")
def sliced_workload():
    """A qft(3) alg2 network plus a plan sliced into many subplans."""
    ideal = qft(3)
    noisy = insert_random_noise(ideal, 2, seed=0)
    network = algorithm_network(noisy, ideal, "alg2")
    plan = build_plan(network)
    sliced = slice_plan(plan, max(1, plan.peak_size() // 4))
    assert sliced.num_slices() > 4  # the fleet must have work to split
    return network, sliced


@pytest.fixture(scope="module")
def reference(sliced_workload):
    network, _ = sliced_workload
    return get_backend("dense").contract_scalar(network)
