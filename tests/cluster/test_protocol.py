"""Wire-protocol unit tests: framing, addresses, key-value bodies."""

import asyncio
import socket

import pytest

from repro.cluster.protocol import (
    MAGIC,
    MAX_FRAME_BYTES,
    OP_GET,
    OP_HIT,
    OP_PUT,
    ProtocolError,
    _HEADER,
    encode_frame,
    pack_kv,
    parse_address,
    read_frame_async,
    recv_frame,
    send_frame,
    unpack_kv,
)


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("example.org:7421") == ("example.org", 7421)

    def test_tcp_scheme_and_whitespace(self):
        assert parse_address("  tcp://10.0.0.5:80 ") == ("10.0.0.5", 80)

    @pytest.mark.parametrize("bad", [
        "no-port-here",
        ":8080",
        "host:",
        "host:eighty",
        "host:0",
        "host:65536",
    ])
    def test_malformed_addresses_raise(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)

    def test_non_string_raises_type_error(self):
        with pytest.raises(TypeError):
            parse_address(("host", 80))


class TestKeyValueBodies:
    def test_round_trip(self):
        body = pack_kv("plan-abc123", b"\x00\x01payload")
        assert unpack_kv(body) == ("plan-abc123", b"\x00\x01payload")

    def test_empty_payload(self):
        assert unpack_kv(pack_kv("k", b"")) == ("k", b"")

    @pytest.mark.parametrize("damaged", [
        b"",                      # no key length at all
        b"\x00",                  # half a key length
        b"\x00\x05ab",            # promises 5 key bytes, carries 2
    ])
    def test_truncated_bodies_raise(self, damaged):
        with pytest.raises(ProtocolError):
            unpack_kv(damaged)


class TestSyncFraming:
    def pair(self):
        return socket.socketpair()

    def test_round_trip(self):
        a, b = self.pair()
        try:
            send_frame(a, OP_PUT, b"payload")
            assert recv_frame(b) == (OP_PUT, b"payload")
        finally:
            a.close(), b.close()

    def test_empty_payload_round_trip(self):
        a, b = self.pair()
        try:
            send_frame(a, OP_GET)
            assert recv_frame(b) == (OP_GET, b"")
        finally:
            a.close(), b.close()

    def test_garbage_magic_raises(self):
        a, b = self.pair()
        try:
            frame = bytearray(encode_frame(OP_GET, b"x"))
            frame[:len(MAGIC)] = b"XXXXX"
            a.sendall(bytes(frame))
            with pytest.raises(ProtocolError, match="magic"):
                recv_frame(b)
        finally:
            a.close(), b.close()

    def test_truncated_frame_raises(self):
        a, b = self.pair()
        try:
            a.sendall(encode_frame(OP_HIT, b"payload")[:-3])
            a.close()
            with pytest.raises(ProtocolError, match="closed"):
                recv_frame(b)
        finally:
            b.close()

    def test_oversize_length_rejected_before_allocation(self):
        a, b = self.pair()
        try:
            a.sendall(_HEADER.pack(MAGIC, OP_HIT, MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="bound"):
                recv_frame(b)
        finally:
            a.close(), b.close()

    def test_send_on_closed_socket_raises_protocol_error(self):
        a, b = self.pair()
        a.close(), b.close()
        with pytest.raises(ProtocolError):
            send_frame(a, OP_GET, b"x" * (1 << 20))


class TestAsyncFraming:
    def read(self, raw: bytes):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            return await read_frame_async(reader)

        return asyncio.run(go())

    def test_round_trip(self):
        assert self.read(encode_frame(OP_PUT, b"abc")) == (OP_PUT, b"abc")

    def test_clean_eof_between_frames_is_eof_error(self):
        with pytest.raises(EOFError):
            self.read(b"")

    def test_eof_inside_header_is_protocol_error(self):
        with pytest.raises(ProtocolError, match="header"):
            self.read(encode_frame(OP_PUT, b"abc")[:4])

    def test_eof_inside_payload_is_protocol_error(self):
        with pytest.raises(ProtocolError, match="payload"):
            self.read(encode_frame(OP_PUT, b"abcdef")[:-2])

    def test_garbage_magic_is_protocol_error(self):
        frame = bytearray(encode_frame(OP_PUT, b"abc"))
        frame[:len(MAGIC)] = b"NOTIT"
        with pytest.raises(ProtocolError, match="magic"):
            self.read(bytes(frame))

    def test_oversize_length_is_protocol_error(self):
        raw = _HEADER.pack(MAGIC, OP_PUT, MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="bound"):
            self.read(raw)


def test_encode_frame_bounds_payload_size():
    class Huge(bytes):
        def __len__(self):
            return MAX_FRAME_BYTES + 1

    with pytest.raises(ProtocolError, match="bound"):
        encode_frame(OP_PUT, Huge())
