"""The cluster error codes are full taxonomy members: registry ↔
service-status parity and wire round-trips."""

import json

import pytest

from repro.api import CheckResponse
from repro.api.errors import (
    ERROR_CODES,
    RemoteUnavailableError,
    ReproError,
    WorkerLostError,
    error_from_code,
)
from repro.service import STATUS_BY_CODE


def test_status_map_and_registry_agree_exactly():
    assert set(STATUS_BY_CODE) == set(ERROR_CODES)


def test_cluster_codes_are_registered():
    assert ERROR_CODES["remote_unavailable"] is RemoteUnavailableError
    assert ERROR_CODES["worker_lost"] is WorkerLostError


def test_cluster_codes_map_to_service_unavailable():
    assert STATUS_BY_CODE["remote_unavailable"] == 503
    assert STATUS_BY_CODE["worker_lost"] == 503


def test_worker_lost_is_a_remote_unavailable():
    """Catching the cache-tier error also catches the executor's —
    callers with one degradation policy need one except clause."""
    error = WorkerLostError("gone")
    assert isinstance(error, RemoteUnavailableError)
    assert isinstance(error, ReproError)
    assert error.code == "worker_lost"


@pytest.mark.parametrize("code", ["remote_unavailable", "worker_lost"])
def test_wire_round_trip(code):
    error = error_from_code(
        code, f"synthetic {code}", details={"url": "h:1"}
    )
    record = error.to_dict()
    assert record["error_code"] == code
    assert record["verdict"] == "ERROR"
    parsed = CheckResponse.from_json(json.dumps(record))
    assert parsed.error == error
    assert parsed.error_code == code
    assert type(parsed.error) is ERROR_CODES[code]
