"""Localhost simulated fleet: real subprocess daemons, end to end.

The acceptance harness: ``repro cache-server`` + two ``repro worker``
daemons spawned as subprocesses through the CLI, driven by an in-process
:class:`~repro.api.Engine` — remote execution agrees with serial to
1e-9 on every backend, results keep input order when a worker is
*actually killed* (``os._exit``) mid-batch, warm runs hit the shared
remote cache, and SIGTERM drains every daemon cleanly.
"""

import json
import os
import re
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro import CheckRequest, CircuitSpec, Engine, NoiseSpec
from repro.circuits import qasm
from repro.cli import main
from repro.library import qft

from cluster_helpers import BACKENDS

SRC = str(Path(repro.__file__).resolve().parents[1])

#: Slicing bound small enough that qft(3) checks fan out many chunks.
SLICING = {"max_intermediate_size": 16}


def daemon_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra)
    return env


class Daemon:
    """One CLI daemon subprocess with its parsed JSON ready line."""

    def __init__(self, command, *args, **extra_env):
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", command, "--port", "0", *args],
            env=daemon_env(**extra_env),
            stderr=subprocess.PIPE,
            text=True,
        )
        self.ready = json.loads(self.proc.stderr.readline())
        assert self.ready["event"] == "ready"
        self.url = f"127.0.0.1:{self.ready['port']}"

    def drain(self):
        """SIGTERM (if still alive) → (returncode, stderr tail)."""
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        _, err = self.proc.communicate(timeout=30)
        return self.proc.returncode, err


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    directory = tmp_path_factory.mktemp("fleet-cache")
    cache = Daemon("cache-server", "--cache-dir", str(directory))
    workers = [Daemon("worker"), Daemon("worker")]
    try:
        yield {
            "cache_url": cache.url,
            "workers": ",".join(w.url for w in workers),
        }
    finally:
        for daemon in (cache, *workers):
            code, err = daemon.drain()
            assert code == 0, err
            assert '"event": "shutdown"' in err


def library_request(seed=0, **config):
    merged = dict(SLICING)
    merged.update(config)
    return CheckRequest(
        ideal=CircuitSpec.from_library("qft", num_qubits=3),
        noise=NoiseSpec(noises=2, seed=seed),
        epsilon=0.05,
        config=merged,
    )


class TestFleetAgreement:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_remote_execution_matches_serial(self, fleet, backend_name):
        request = library_request(backend=backend_name)
        serial = Engine()
        remote = Engine(workers=fleet["workers"])
        try:
            expected = serial.check(request)
            observed = remote.check(request)
        finally:
            remote.close()
            serial.close()
        assert observed.ok and expected.ok
        assert observed.equivalent == expected.equivalent
        assert abs(observed.fidelity - expected.fidelity) < 1e-9


class TestWorkerDeathMidBatch:
    def test_killed_worker_keeps_results_ordered_and_correct(self):
        """One worker ``os._exit``s after its first chunk; the batch
        still returns every result, in input order, agreeing with a
        serial engine."""
        dying = Daemon("worker", REPRO_WORKER_EXIT_AFTER="1")
        healthy = Daemon("worker")
        requests = [library_request(seed=seed) for seed in (0, 1, 2)]
        serial = Engine()
        remote = Engine(workers=f"{dying.url},{healthy.url}")
        try:
            expected = [serial.check(req) for req in requests]
            observed = list(remote.check_iter(requests))
        finally:
            remote.close()
            serial.close()
            code, err = dying.drain()
            assert code == 17, err  # the scripted fail-injection exit
            assert '"event": "fail-injection-exit"' in err
            code, err = healthy.drain()
            assert code == 0, err

        assert len(observed) == len(expected)
        for want, got in zip(expected, observed):
            assert got.ok
            assert got.equivalent == want.equivalent
            assert abs(got.fidelity - want.fidelity) < 1e-9


class TestSharedCacheTier:
    def test_warm_batch_reports_remote_hits(self, fleet, tmp_path, capsys):
        path = tmp_path / "qft3.qasm"
        qasm.dump(qft(3), path)
        manifest = tmp_path / "manifest.txt"
        manifest.write_text(f"{path}\n{path}\n")

        def run_batch(cache_dir):
            code = main([
                "batch", str(manifest), "--noises", "2", "--seed", "7",
                "--epsilon", "0.05", "--max-intermediate", "16",
                "--cache", "--cache-dir", str(tmp_path / cache_dir),
                "--cache-url", fleet["cache_url"],
            ])
            captured = capsys.readouterr()
            match = re.search(r"remote hits (\d+)", captured.err)
            assert match, captured.err
            return code, int(match.group(1)), captured.out

        cold_code, cold_hits, cold_out = run_batch("host-a")
        assert cold_code == 0
        assert cold_hits == 0
        # a different machine's local cache, the same shared server
        warm_code, warm_hits, warm_out = run_batch("host-b")
        assert warm_code == 0
        assert warm_hits > 0
        cold_records = [json.loads(line) for line in cold_out.splitlines()]
        warm_records = [json.loads(line) for line in warm_out.splitlines()]
        assert [r["verdict"] for r in warm_records] == [
            r["verdict"] for r in cold_records
        ]
        assert [r["fidelity"] for r in warm_records] == [
            r["fidelity"] for r in cold_records
        ]


class TestDrain:
    def test_sigterm_drains_both_daemon_kinds(self, tmp_path):
        cache = Daemon("cache-server", "--cache-dir", str(tmp_path / "c"))
        worker = Daemon("worker")
        for daemon, kind in ((cache, "cache-server"), (worker, "worker")):
            code, err = daemon.drain()
            assert code == 0, err
            events = [json.loads(line) for line in err.splitlines()]
            assert events[-1]["event"] == "shutdown"
            assert events[-1]["kind"] == kind
