"""Helpers shared by the cluster tests (importable, unlike conftest)."""

import io
import socket

from repro.cluster import CacheServer, ServerThread, WorkerServer

BACKENDS = ("tdd", "dense", "einsum")


def free_port() -> int:
    """A port nothing is listening on (for dead-peer tests)."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def start_cache_server(**kwargs) -> ServerThread:
    kwargs.setdefault("log_stream", io.StringIO())
    return ServerThread(CacheServer(**kwargs)).start()


def start_worker(**kwargs) -> ServerThread:
    kwargs.setdefault("log_stream", io.StringIO())
    return ServerThread(WorkerServer(**kwargs)).start()
