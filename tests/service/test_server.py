"""End-to-end tests of the HTTP service over a live loopback socket.

One module-scoped :class:`ServiceThread` (its own event loop on a
background thread) serves most tests; saturation / deadline / shutdown
tests build private servers around gated engines.
"""

import http.client
import io
import json
import threading
import time

import pytest

from repro import Engine
from repro.service import ServiceConfig, ServiceThread

REQUEST = {
    "schema_version": "1",
    "ideal": {"library": "qft", "params": {"num_qubits": 3}},
    "noise": {"noises": 2, "seed": 0},
    "epsilon": 0.05,
}


def call(server, method, path, body=None, headers=None):
    """One HTTP exchange; returns (status, headers-dict, body-bytes)."""
    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        payload = response.read()
        return response.status, dict(response.getheaders()), payload
    finally:
        conn.close()


def check_body(**overrides):
    record = dict(REQUEST)
    record.update(overrides)
    return json.dumps(record).encode()


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    # module scope outlives the autouse per-test cache isolation, and
    # the engine resolves $REPRO_CACHE_DIR at construction — pin the
    # env here so the module's cache never touches ~/.cache/repro
    patch = pytest.MonkeyPatch()
    patch.setenv(
        "REPRO_CACHE_DIR", str(tmp_path_factory.mktemp("service-cache"))
    )
    log = io.StringIO()
    try:
        with ServiceThread(Engine(cache=True), log_stream=log) as handle:
            handle.log = log
            yield handle
    finally:
        patch.undo()


class TestHealthAndRouting:
    def test_healthz(self, server):
        status, _, body = call(server, "GET", "/healthz")
        assert status == 200
        assert json.loads(body) == {
            "status": "ok", "schema_version": "1",
        }

    def test_unknown_path_is_404(self, server):
        status, _, body = call(server, "GET", "/nope")
        assert status == 404
        assert json.loads(body)["error_code"] == "invalid_request"

    def test_wrong_method_is_405(self, server):
        status, _, _ = call(server, "GET", "/v1/check")
        assert status == 405

    def test_keep_alive_serves_sequential_requests(self, server):
        conn = http.client.HTTPConnection(
            server.host, server.port, timeout=30
        )
        try:
            for _ in range(3):
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()


class TestCheck:
    def test_check_round_trip(self, server):
        status, headers, body = call(
            server, "POST", "/v1/check", body=check_body()
        )
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        record = json.loads(body)
        assert record["schema_version"] == "1"
        assert record["verdict"] == "EQUIVALENT"
        assert 0.9 < record["fidelity"] <= 1.0

    def test_warm_repeat_hits_the_result_cache(self, server):
        call(server, "POST", "/v1/check", body=check_body(epsilon=0.045))
        status, _, body = call(
            server, "POST", "/v1/check", body=check_body(epsilon=0.045)
        )
        assert status == 200
        assert json.loads(body)["stats"]["result_cache_hit"] == 1

    def test_malformed_json_is_400(self, server):
        status, _, body = call(server, "POST", "/v1/check", body=b"{oops")
        assert status == 400
        record = json.loads(body)
        assert record["error_code"] == "invalid_request"
        assert record["verdict"] == "ERROR"

    def test_unknown_field_is_400(self, server):
        status, _, body = call(
            server, "POST", "/v1/check", body=check_body(epsilonn=0.1)
        )
        assert status == 400
        assert json.loads(body)["error_code"] == "unknown_field"

    def test_missing_circuit_is_400(self, server):
        status, _, body = call(
            server, "POST", "/v1/check",
            body=check_body(ideal={"path": "/missing.qasm"}),
        )
        assert status == 400
        assert json.loads(body)["error_code"] == "circuit_load_failed"

    def test_bad_timeout_header_is_400(self, server):
        status, _, body = call(
            server, "POST", "/v1/check", body=check_body(),
            headers={"X-Repro-Timeout": "soon"},
        )
        assert status == 400
        assert json.loads(body)["error_code"] == "invalid_request"


class TestBatch:
    def test_streamed_ndjson_keeps_order_and_isolates_errors(self, server):
        rows = b"\n".join([
            check_body(),
            b'{"bogus_field": 1}',
            check_body(epsilon=0.04),
        ])
        status, headers, body = call(server, "POST", "/v1/batch", body=rows)
        assert status == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        assert headers.get("Transfer-Encoding") == "chunked"
        records = [json.loads(line) for line in body.splitlines()]
        assert [r["index"] for r in records] == [0, 1, 2]
        assert [r["verdict"] for r in records] == [
            "EQUIVALENT", "ERROR", "EQUIVALENT",
        ]
        assert records[1]["error_code"] == "unknown_field"

    def test_empty_batch_is_400(self, server):
        status, _, body = call(server, "POST", "/v1/batch", body=b"\n\n")
        assert status == 400
        assert json.loads(body)["error_code"] == "invalid_request"


class TestJobs:
    def test_submit_poll_collect_once(self, server):
        status, _, body = call(
            server, "POST", "/v1/jobs", body=check_body()
        )
        assert status == 202
        job = json.loads(body)
        assert job["schema_version"] == "1"
        status, _, body = call(server, "GET", f"/v1/jobs/{job['id']}")
        assert status == 200
        assert json.loads(body)["verdict"] == "EQUIVALENT"
        # collectable exactly once
        status, _, body = call(server, "GET", f"/v1/jobs/{job['id']}")
        assert status == 404
        assert json.loads(body)["error_code"] == "job_not_found"

    def test_unknown_job_is_404(self, server):
        status, _, body = call(server, "GET", "/v1/jobs/job-424242")
        assert status == 404
        assert json.loads(body)["error_code"] == "job_not_found"

    def test_running_job_answers_202(self, server):
        original = server.service.engine.job_state
        server.service.engine.job_state = lambda handle: "running"
        try:
            status, _, body = call(server, "GET", "/v1/jobs/job-77")
            assert status == 202
            assert json.loads(body)["state"] == "running"
        finally:
            server.service.engine.job_state = original

    def test_submit_of_bad_request_is_400(self, server):
        status, _, body = call(server, "POST", "/v1/jobs", body=b"nope")
        assert status == 400


class TestMetricsAndLogs:
    def test_metrics_exposition(self, server):
        call(server, "POST", "/v1/check", body=check_body())
        status, headers, body = call(server, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{method="POST",path="/v1/check"' in text
        assert "# TYPE repro_request_seconds histogram" in text
        assert "repro_request_seconds_bucket" in text
        assert "# TYPE repro_inflight gauge" in text
        assert "# TYPE repro_checks_total counter" in text
        assert "repro_result_cache_hits_total" in text
        assert "repro_planning_seconds_total" in text
        assert "repro_plan_trials_total" in text

    def test_engine_counters_accumulate(self, server):
        _, _, before = call(server, "GET", "/metrics")
        call(server, "POST", "/v1/check", body=check_body())
        _, _, after = call(server, "GET", "/metrics")

        def checks(page):
            for line in page.decode().splitlines():
                if line.startswith("repro_checks_total"):
                    return float(line.split()[-1])
            raise AssertionError("repro_checks_total missing")

        assert checks(after) == checks(before) + 1

    def test_structured_log_lines(self, server):
        call(server, "POST", "/v1/check", body=check_body())
        lines = [
            json.loads(line)
            for line in server.log.getvalue().splitlines()
        ]
        assert lines[0]["event"] == "ready"
        requests = [l for l in lines if l["event"] == "request"]
        checks = [r for r in requests if r["path"] == "/v1/check"]
        assert checks, "no /v1/check log line"
        record = checks[-1]
        assert record["method"] == "POST"
        assert record["status"] == 200
        assert record["wall_ms"] >= 0
        assert len(record["trace_id"]) == 16
        assert "result_cache_hit" in record


def wait_for_log(server, predicate, timeout=5.0):
    """Log lines land after the response drains — poll briefly."""
    deadline = time.time() + timeout
    while True:
        matches = [
            record
            for record in (
                json.loads(line)
                for line in server.log.getvalue().splitlines()
            )
            if predicate(record)
        ]
        if matches or time.time() >= deadline:
            return matches
        time.sleep(0.01)


class TestTracing:
    def test_trace_header_inlines_the_span_tree(self, server):
        status, _, body = call(
            server, "POST", "/v1/check",
            body=check_body(epsilon=0.043),
            headers={"X-Repro-Trace": "1"},
        )
        assert status == 200
        record = json.loads(body)
        tree = record["trace"]
        assert tree["name"] == "engine.request"
        assert len(tree["attrs"]["trace_id"]) == 16
        assert tree["children"]

    def test_no_header_means_no_trace(self, server):
        status, _, body = call(
            server, "POST", "/v1/check", body=check_body(epsilon=0.042)
        )
        assert status == 200
        assert "trace" not in json.loads(body)

    def test_zero_header_value_stays_off(self, server):
        status, _, body = call(
            server, "POST", "/v1/check",
            body=check_body(epsilon=0.041),
            headers={"X-Repro-Trace": "0"},
        )
        assert status == 200
        assert "trace" not in json.loads(body)

    def test_phase_seconds_histogram_is_exported(self, server):
        # a sliced einsum check exercises every phase incl. execute
        call(
            server, "POST", "/v1/check",
            body=check_body(epsilon=0.047, config={
                "backend": "einsum",
                "planner": "order",
                "max_intermediate_size": 64,
                "slice_batch": 4,
            }),
            headers={"X-Repro-Trace": "1"},
        )
        _, _, body = call(server, "GET", "/metrics")
        text = body.decode()
        assert "# TYPE repro_phase_seconds histogram" in text
        assert 'repro_phase_seconds_bucket{phase="execute"' in text
        assert 'repro_phase_seconds_count{phase="plan"' in text

    def test_trace_id_threads_through_the_job_lifecycle(self, server):
        status, _, body = call(
            server, "POST", "/v1/jobs", body=check_body(epsilon=0.046)
        )
        assert status == 202
        job = json.loads(body)
        assert len(job["trace_id"]) == 16
        assert job["id"].startswith(f"job-{job['trace_id']}-")
        status, _, _ = call(server, "GET", f"/v1/jobs/{job['id']}")
        assert status == 200
        collected = wait_for_log(
            server,
            lambda l: l.get("job_id") == job["id"]
            and l.get("status") == 200,
        )
        assert collected
        assert collected[-1]["trace_id"] == job["trace_id"]

    def test_check_log_and_trace_share_one_identity(self, server):
        _, _, body = call(
            server, "POST", "/v1/check",
            body=check_body(epsilon=0.049),
            headers={"X-Repro-Trace": "yes"},
        )
        trace_id = json.loads(body)["trace"]["attrs"]["trace_id"]
        assert wait_for_log(
            server, lambda l: l.get("trace_id") == trace_id
        )


class _GatedEngine(Engine):
    """An engine whose ``respond`` blocks until released — drives the
    saturation and deadline paths deterministically."""

    def __init__(self):
        super().__init__()
        self.entered = threading.Event()
        self.release = threading.Event()

    def respond(self, request):
        self.entered.set()
        assert self.release.wait(timeout=30), "gate never released"
        return super().respond(request)


class TestAdmissionControl:
    def test_saturated_service_answers_503_with_retry_after(self):
        engine = _GatedEngine()
        with ServiceThread(
            engine, log_stream=io.StringIO(), max_inflight=1
        ) as server:
            first = {}

            def occupant():
                first["response"] = call(
                    server, "POST", "/v1/check", body=check_body()
                )

            thread = threading.Thread(target=occupant)
            thread.start()
            assert engine.entered.wait(timeout=10)
            # slot is taken: the next request must be rejected, not queued
            status, headers, body = call(
                server, "POST", "/v1/check", body=check_body()
            )
            assert status == 503
            assert headers["Retry-After"] == "1"
            assert json.loads(body)["error_code"] == "overloaded"
            # cheap endpoints stay responsive under saturation
            assert call(server, "GET", "/healthz")[0] == 200
            assert call(server, "GET", "/metrics")[0] == 200
            engine.release.set()
            thread.join(timeout=30)
            assert first["response"][0] == 200

    def test_deadline_expiry_answers_504_typed_error(self):
        engine = _GatedEngine()
        with ServiceThread(
            engine, log_stream=io.StringIO(), max_inflight=2
        ) as server:
            status, _, body = call(
                server, "POST", "/v1/check", body=check_body(),
                headers={"X-Repro-Timeout": "0.2"},
            )
            assert status == 504
            record = json.loads(body)
            assert record["error_code"] == "deadline_exceeded"
            assert record["verdict"] == "ERROR"
            # the slot is still held by the abandoned thread...
            engine.release.set()
            # ...and the service keeps serving
            deadline = time.time() + 10
            while time.time() < deadline:
                if call(server, "GET", "/healthz")[0] == 200:
                    break
            status, _, _ = call(
                server, "POST", "/v1/check", body=check_body()
            )
            assert status == 200


class TestShutdown:
    def test_stop_drains_and_closes_engine(self):
        engine = Engine()
        log = io.StringIO()
        server = ServiceThread(engine, log_stream=log).start()
        assert call(server, "GET", "/healthz")[0] == 200
        server.stop()
        events = [json.loads(l) for l in log.getvalue().splitlines()]
        assert events[-1]["event"] == "shutdown"
        assert events[-1]["drained"] is True
        with pytest.raises(OSError):
            call(server, "GET", "/healthz")
        server.stop()  # idempotent

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_inflight=0)
        with pytest.raises(ValueError):
            ServiceConfig(request_timeout=0)
