"""Every ReproError machine code pins an HTTP status — stable API.

The mapping is enumerated twice on purpose: once in the service
(:data:`repro.service.STATUS_BY_CODE`) and once here.  Growing the
taxonomy without deciding its HTTP status fails these tests, which is
exactly the reminder a new code needs.
"""

import json

import pytest

from repro.api import CheckResponse
from repro.api.errors import ERROR_CODES, error_from_code
from repro.service import STATUS_BY_CODE, http_status_for

#: The pinned contract, one row per taxonomy code.
EXPECTED_STATUS = {
    "repro_error": 500,
    "invalid_request": 400,
    "unsupported_schema_version": 400,
    "unknown_field": 400,
    "invalid_circuit_spec": 400,
    "invalid_noise_spec": 400,
    "invalid_config": 400,
    "circuit_load_failed": 400,
    "check_failed": 500,
    "job_not_found": 404,
    "deadline_exceeded": 504,
    "overloaded": 503,
    "remote_unavailable": 503,
    "worker_lost": 503,
}


def test_every_taxonomy_code_has_a_pinned_status():
    assert set(EXPECTED_STATUS) == set(ERROR_CODES)
    assert set(STATUS_BY_CODE) == set(ERROR_CODES)


@pytest.mark.parametrize("code", sorted(ERROR_CODES))
def test_code_maps_to_its_pinned_status(code):
    assert http_status_for(code) == EXPECTED_STATUS[code]


def test_unknown_future_codes_degrade_to_500():
    assert http_status_for("code_from_the_future") == 500


@pytest.mark.parametrize("code", sorted(ERROR_CODES))
def test_error_body_round_trips_through_the_wire(code):
    """The HTTP error body is the standard wire error record: parsing
    it back yields an equal typed error with the same code."""
    error = error_from_code(code, f"synthetic {code} failure", index=None)
    record = error.to_dict()
    assert record["error_code"] == code
    assert record["verdict"] == "ERROR"
    assert record["schema_version"] == "1"
    parsed = CheckResponse.from_json(json.dumps(record))
    assert parsed.error == error
    assert parsed.error_code == code


def test_golden_error_fixture_status():
    """The golden error record of the wire schema maps to 400."""
    from pathlib import Path

    fixture = (
        Path(__file__).parent.parent / "api" / "fixtures" / "error_v1.json"
    )
    record = json.loads(fixture.read_text())
    assert http_status_for(record["error_code"]) == 400
