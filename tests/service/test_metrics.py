"""Unit tests for the Prometheus text-format metrics."""

import threading

import pytest

from repro.service.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    render_counter_block,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c_total", "help", ())
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counters_only_go_up(self):
        counter = Counter("c_total", "help", ())
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_children_are_independent(self):
        counter = Counter("c_total", "help", ("path",))
        counter.labels(path="/a").inc()
        counter.labels(path="/a").inc()
        counter.labels(path="/b").inc()
        assert counter.labels(path="/a").value == 2
        assert counter.labels(path="/b").value == 1

    def test_wrong_label_names_rejected(self):
        counter = Counter("c_total", "help", ("path",))
        with pytest.raises(ValueError):
            counter.labels(route="/a")

    def test_render_escapes_label_values(self):
        counter = Counter("c_total", "help", ("path",))
        counter.labels(path='we"ird\\x').inc()
        assert 'path="we\\"ird\\\\x"' in counter.render()


class TestGauge:
    def test_up_down_set(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "help")
        gauge.inc()
        gauge.inc()
        gauge.dec()
        assert gauge.value == 1
        gauge.set(7)
        assert gauge.value == 7
        assert "# TYPE g gauge" in registry.render()


class TestHistogram:
    def test_cumulative_buckets_sum_and_count(self):
        hist = Histogram("h", "help", (), buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        text = hist.render()
        assert 'h_bucket{le="0.1"} 1' in text
        assert 'h_bucket{le="1"} 3' in text
        assert 'h_bucket{le="+Inf"} 4' in text
        assert "h_count 4" in text
        assert "h_sum 6.05" in text

    def test_buckets_are_sorted(self):
        hist = Histogram("h", "help", (), buckets=(1.0, 0.1))
        assert hist.buckets == (0.1, 1.0)

    def test_labelled_histogram(self):
        hist = Histogram("h", "help", ("path",), buckets=(1.0,))
        hist.labels(path="/x").observe(0.5)
        assert 'h_bucket{path="/x",le="1"} 1' in hist.render()


class TestRegistry:
    def test_duplicate_names_rejected(self):
        registry = MetricsRegistry()
        registry.counter("dup_total", "help")
        with pytest.raises(ValueError):
            registry.gauge("dup_total", "help")

    def test_render_page(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "first").inc()
        registry.gauge("b", "second").set(2)
        page = registry.render()
        assert page.endswith("\n")
        assert "# HELP a_total first" in page
        assert "# TYPE a_total counter" in page
        assert "a_total 1" in page
        assert "b 2" in page

    def test_render_appends_extra_block(self):
        registry = MetricsRegistry()
        extra = render_counter_block({"repro_checks_total": 3})
        page = registry.render(extra=extra)
        assert "# TYPE repro_checks_total counter" in page
        assert "repro_checks_total 3" in page

    def test_thread_safety_of_shared_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammer_total", "help", ("path",))

        def spin():
            for _ in range(1000):
                counter.labels(path="/x").inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.labels(path="/x").value == 8000
