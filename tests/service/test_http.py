"""Unit tests for the minimal HTTP/1.1 layer."""

import asyncio

import pytest

from repro.service.http import (
    LAST_CHUNK,
    HttpError,
    read_request,
    render_chunk,
    render_chunked_head,
    render_response,
)


def parse(raw: bytes, **kwargs):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(go())


class TestReadRequest:
    def test_simple_get(self):
        request = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.body == b""
        assert request.keep_alive

    def test_post_with_body(self):
        request = parse(
            b"POST /v1/check HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd"
        )
        assert request.method == "POST"
        assert request.body == b"abcd"

    def test_query_and_percent_decoding(self):
        request = parse(b"GET /a%20b?x=1&y=two HTTP/1.1\r\n\r\n")
        assert request.path == "/a b"
        assert request.query == {"x": "1", "y": "two"}

    def test_headers_lowercased_and_trimmed(self):
        request = parse(
            b"GET / HTTP/1.1\r\nX-Repro-Timeout:  2.5 \r\n"
            b"Connection: close\r\n\r\n"
        )
        assert request.headers["x-repro-timeout"] == "2.5"
        assert not request.keep_alive

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_mid_request_eof_raises(self):
        with pytest.raises(asyncio.IncompleteReadError):
            parse(b"GET / HTTP/1.1\r\nConte")

    def test_truncated_body_raises(self):
        with pytest.raises(asyncio.IncompleteReadError):
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")

    @pytest.mark.parametrize("raw", [
        b"GET\r\n\r\n",                                # no target/version
        b"GET / HTTP/1.1 extra\r\n\r\n",               # 4 request-line parts
        b"GET / SPDY/3\r\n\r\n",                       # wrong protocol
        b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",    # malformed header
        b"POST / HTTP/1.1\r\nContent-Length: nan\r\n\r\n",
        b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
    ])
    def test_malformed_requests_answer_400(self, raw):
        with pytest.raises(HttpError) as err:
            parse(raw)
        assert err.value.status == 400

    def test_chunked_request_bodies_rejected(self):
        with pytest.raises(HttpError) as err:
            parse(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            )
        assert err.value.status == 411

    def test_oversize_body_rejected(self):
        with pytest.raises(HttpError) as err:
            parse(
                b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100,
                max_body_bytes=10,
            )
        assert err.value.status == 413

    def test_oversize_headers_rejected(self):
        raw = (
            b"GET / HTTP/1.1\r\nX-Pad: " + b"y" * 4096 + b"\r\n\r\n"
        )
        with pytest.raises(HttpError) as err:
            parse(raw, max_header_bytes=256)
        assert err.value.status == 413


class TestRenderResponse:
    def test_fixed_response_shape(self):
        raw = render_response(200, b'{"ok": true}')
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 12" in head
        assert b"Content-Type: application/json" in head
        assert b"Connection: keep-alive" in head
        assert body == b'{"ok": true}'

    def test_extra_headers_and_close(self):
        raw = render_response(
            503, b"{}", extra_headers=(("Retry-After", "1"),),
            keep_alive=False,
        )
        assert b"Retry-After: 1\r\n" in raw
        assert b"Connection: close" in raw

    def test_chunked_framing_round_trips(self):
        stream = (
            render_chunked_head(200)
            + render_chunk(b'{"a":1}\n')
            + render_chunk(b'{"b":2}\n')
            + LAST_CHUNK
        )
        head, _, rest = stream.partition(b"\r\n\r\n")
        assert b"Transfer-Encoding: chunked" in head
        # 8 == hex length of each payload
        assert rest == (
            b'8\r\n{"a":1}\n\r\n' b'8\r\n{"b":2}\n\r\n' b"0\r\n\r\n"
        )
