"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.noise import bit_flip, depolarizing, phase_flip


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path, monkeypatch):
    """Point the disk cache at a per-test directory.

    Caching is off by default, but any test that switches it on (or
    shells out to the CLI with ``--cache``) must never touch the real
    ``~/.cache/repro``.  Worker processes inherit the environment, so
    the redirection holds across process pools too.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture
def rng():
    """Deterministic RNG for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def qft2_ideal():
    """The paper's Fig. 1 circuit: 2-qubit QFT."""
    return QuantumCircuit(2, "qft2").h(0).cs(0, 1).h(1).swap(0, 1)


@pytest.fixture
def qft2_noisy():
    """The paper's Fig. 2 circuit with p = 0.9 bit/phase flips."""
    circuit = QuantumCircuit(2, "qft2_noisy")
    circuit.h(0).cs(0, 1)
    circuit.append(bit_flip(0.9), [1])
    circuit.h(1)
    circuit.append(phase_flip(0.9), [0])
    circuit.swap(0, 1)
    return circuit


def make_noisy_qft2(p: float) -> QuantumCircuit:
    """Fig. 2 with a configurable flip parameter."""
    circuit = QuantumCircuit(2, "qft2_noisy")
    circuit.h(0).cs(0, 1)
    circuit.append(bit_flip(p), [1])
    circuit.h(1)
    circuit.append(phase_flip(p), [0])
    circuit.swap(0, 1)
    return circuit


@pytest.fixture
def small_noisy_pair():
    """A 3-qubit ideal/noisy pair with depolarising noise."""
    from repro.noise import insert_random_noise

    ideal = QuantumCircuit(3, "ghz").h(0).cx(0, 1).cx(1, 2)
    noisy = insert_random_noise(
        ideal, 2, channel_factory=lambda: depolarizing(0.99), seed=42
    )
    return ideal, noisy
