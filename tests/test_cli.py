"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.circuits import qasm
from repro.cli import build_parser, load_noisy, main
from repro.library import qft


@pytest.fixture
def qasm_file(tmp_path):
    path = tmp_path / "qft3.qasm"
    qasm.dump(qft(3), path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_check_defaults(self, qasm_file):
        args = build_parser().parse_args(["check", qasm_file])
        assert args.epsilon == 0.01
        assert args.algorithm == "auto"


class TestLoadNoisy:
    def test_random_insertion(self, qasm_file):
        args = build_parser().parse_args(
            ["check", qasm_file, "--noises", "3", "--seed", "1"]
        )
        ideal, noisy = load_noisy(args)
        assert noisy.num_noise_sites == 3
        assert ideal.num_gates == noisy.num_gates

    def test_every_gate(self, qasm_file):
        args = build_parser().parse_args(
            ["check", qasm_file, "--every-gate"]
        )
        _, noisy = load_noisy(args)
        assert noisy.num_noise_sites > qft(3).num_gates  # 2q gates get 2

    def test_channel_selection(self, qasm_file):
        args = build_parser().parse_args(
            ["check", qasm_file, "--noises", "1", "--channel", "bit_flip"]
        )
        _, noisy = load_noisy(args)
        assert noisy.noise_instructions()[0].name == "bit_flip"


class TestCommands:
    def test_check_equivalent_exit_zero(self, qasm_file, capsys):
        code = main(["check", qasm_file, "--noises", "2", "--epsilon", "0.05"])
        out = capsys.readouterr().out
        assert code == 0
        assert "EQUIVALENT" in out

    def test_check_not_equivalent_exit_one(self, qasm_file, capsys):
        code = main([
            "check", qasm_file, "--noises", "4", "--p", "0.5",
            "--epsilon", "0.01", "--algorithm", "alg2",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "NOT EQUIVALENT" in out

    def test_fidelity_prints_number(self, qasm_file, capsys):
        code = main(["fidelity", qasm_file, "--noises", "2"])
        out = capsys.readouterr().out.strip()
        assert code == 0
        assert 0.9 < float(out) <= 1.0

    def test_fidelity_algorithms_agree(self, qasm_file, capsys):
        main(["fidelity", qasm_file, "--noises", "2", "--algorithm", "alg1"])
        f1 = float(capsys.readouterr().out.strip())
        main(["fidelity", qasm_file, "--noises", "2", "--algorithm", "alg2"])
        f2 = float(capsys.readouterr().out.strip())
        assert np.isclose(f1, f2, atol=1e-8)
