"""Unit tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.circuits import qasm
from repro.cli import build_parser, load_noisy, main, read_manifest
from repro.library import qft


@pytest.fixture
def qasm_file(tmp_path):
    path = tmp_path / "qft3.qasm"
    qasm.dump(qft(3), path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_check_defaults(self, qasm_file):
        args = build_parser().parse_args(["check", qasm_file])
        assert args.epsilon == 0.01
        assert args.algorithm == "auto"


class TestLoadNoisy:
    def test_random_insertion(self, qasm_file):
        args = build_parser().parse_args(
            ["check", qasm_file, "--noises", "3", "--seed", "1"]
        )
        ideal, noisy = load_noisy(args)
        assert noisy.num_noise_sites == 3
        assert ideal.num_gates == noisy.num_gates

    def test_every_gate(self, qasm_file):
        args = build_parser().parse_args(
            ["check", qasm_file, "--every-gate"]
        )
        _, noisy = load_noisy(args)
        assert noisy.num_noise_sites > qft(3).num_gates  # 2q gates get 2

    def test_channel_selection(self, qasm_file):
        args = build_parser().parse_args(
            ["check", qasm_file, "--noises", "1", "--channel", "bit_flip"]
        )
        _, noisy = load_noisy(args)
        assert noisy.noise_instructions()[0].name == "bit_flip"


class TestCommands:
    def test_check_equivalent_exit_zero(self, qasm_file, capsys):
        code = main(["check", qasm_file, "--noises", "2", "--epsilon", "0.05"])
        out = capsys.readouterr().out
        assert code == 0
        assert "EQUIVALENT" in out

    def test_check_not_equivalent_exit_one(self, qasm_file, capsys):
        code = main([
            "check", qasm_file, "--noises", "4", "--p", "0.5",
            "--epsilon", "0.01", "--algorithm", "alg2",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "NOT EQUIVALENT" in out

    def test_fidelity_prints_number(self, qasm_file, capsys):
        code = main(["fidelity", qasm_file, "--noises", "2"])
        out = capsys.readouterr().out.strip()
        assert code == 0
        assert 0.9 < float(out) <= 1.0

    def test_fidelity_algorithms_agree(self, qasm_file, capsys):
        main(["fidelity", qasm_file, "--noises", "2", "--algorithm", "alg1"])
        f1 = float(capsys.readouterr().out.strip())
        main(["fidelity", qasm_file, "--noises", "2", "--algorithm", "alg2"])
        f2 = float(capsys.readouterr().out.strip())
        assert np.isclose(f1, f2, atol=1e-8)

    def test_fidelity_dense_choice(self, qasm_file, capsys):
        """The dense baseline is a first-class fidelity algorithm."""
        main(["fidelity", qasm_file, "--noises", "2", "--algorithm", "dense"])
        dense = float(capsys.readouterr().out.strip())
        main(["fidelity", qasm_file, "--noises", "2", "--algorithm", "alg2"])
        alg2 = float(capsys.readouterr().out.strip())
        assert np.isclose(dense, alg2, atol=1e-8)

    @pytest.mark.parametrize("backend", ["tdd", "dense", "einsum"])
    def test_fidelity_backend_flag(self, qasm_file, capsys, backend):
        code = main([
            "fidelity", qasm_file, "--noises", "2", "--backend", backend,
        ])
        assert code == 0
        assert 0.9 < float(capsys.readouterr().out.strip()) <= 1.0


class TestJsonOutput:
    def test_check_json_contains_required_fields(self, qasm_file, capsys):
        code = main([
            "check", qasm_file, "--noises", "2", "--epsilon", "0.05",
            "--json",
        ])
        record = json.loads(capsys.readouterr().out)
        assert code == 0
        assert record["verdict"] == "EQUIVALENT"
        assert record["backend"] == "tdd"
        assert 0.9 < record["fidelity"] <= 1.0
        assert record["time_seconds"] >= 0
        assert record["stats"]["algorithm"] == record["algorithm"]

    def test_check_json_backend_selection(self, qasm_file, capsys):
        main([
            "check", qasm_file, "--noises", "2", "--epsilon", "0.05",
            "--backend", "einsum", "--json",
        ])
        record = json.loads(capsys.readouterr().out)
        assert record["backend"] == "einsum"

    def test_check_json_roundtrips_direct_result(self, qasm_file, capsys):
        from repro import CheckConfig, CheckSession
        from repro.noise import insert_random_noise

        main([
            "check", qasm_file, "--noises", "2", "--epsilon", "0.05",
            "--json",
        ])
        record = json.loads(capsys.readouterr().out)
        ideal = qasm.load(qasm_file)
        noisy = insert_random_noise(ideal, 2, seed=0)
        direct = CheckSession(CheckConfig(epsilon=0.05)).check(ideal, noisy)
        assert record["equivalent"] == direct.equivalent
        assert np.isclose(record["fidelity"], direct.fidelity, atol=1e-12)


class TestBatch:
    @pytest.fixture
    def manifest(self, tmp_path, qasm_file):
        other = tmp_path / "qft2.qasm"
        qasm.dump(qft(2), other)
        path = tmp_path / "manifest.txt"
        path.write_text(
            "# ideal [noisy]\n"
            f"{qasm_file}\n"
            f"{other} {other}\n"
            "\n"
        )
        return str(path)

    def test_read_manifest(self, manifest):
        entries = list(read_manifest(manifest))
        assert len(entries) == 2
        assert entries[0][1] is None
        assert entries[1][1] is not None

    def test_read_manifest_rejects_extra_fields(self, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("a.qasm b.qasm c.qasm\n")
        with pytest.raises(ValueError):
            list(read_manifest(str(bad)))

    def test_batch_streams_jsonl(self, manifest, qasm_file, capsys):
        code = main([
            "batch", manifest, "--noises", "1", "--epsilon", "0.05",
        ])
        lines = capsys.readouterr().out.strip().splitlines()
        assert code == 0
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[0]["ideal"] == qasm_file
        for record in records:
            assert record["verdict"] == "EQUIVALENT"
            assert record["backend"] == "tdd"
            assert 0.9 < record["fidelity"] <= 1.0

    def test_batch_jsonl_roundtrips_direct_check(self, manifest, capsys):
        """JSONL records carry the same verdict/fidelity as direct checks."""
        from repro import CheckConfig, CheckSession
        from repro.noise import insert_random_noise

        main([
            "batch", manifest, "--noises", "1", "--epsilon", "0.05",
            "--backend", "einsum",
        ])
        records = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        session = CheckSession(CheckConfig(epsilon=0.05, backend="einsum"))
        for record in records:
            ideal = qasm.load(record["ideal"])
            base = qasm.load(record["noisy"])
            noisy = insert_random_noise(base, 1, seed=0)
            direct = session.check(ideal, noisy)
            assert record["equivalent"] == direct.equivalent
            assert np.isclose(record["fidelity"], direct.fidelity, atol=1e-12)


class TestPlanCommand:
    def test_plan_prints_report_without_contracting(self, qasm_file, capsys,
                                                    monkeypatch):
        """`repro plan` must never execute a contraction."""
        from repro.backends import DenseBackend, NumpyEinsumBackend, TddBackend
        from repro.tensornet import TensorNetwork

        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("plan command contracted a network")

        # Patch the concrete classes (they override the ABC method) and
        # the raw dense engine, so any contraction path trips the guard.
        for cls in (DenseBackend, NumpyEinsumBackend, TddBackend):
            monkeypatch.setattr(cls, "contract_scalar", boom)
        monkeypatch.setattr(TensorNetwork, "contract", boom)
        code = main(["plan", qasm_file, "--noises", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "steps" in out
        assert "predicted flops" in out
        assert "peak intermediate" in out
        assert "width" in out

    def test_plan_json_fields(self, qasm_file, capsys):
        code = main([
            "plan", qasm_file, "--noises", "1", "--algorithm", "alg1",
            "--planner", "greedy", "--json",
        ])
        record = json.loads(capsys.readouterr().out)
        assert code == 0
        assert record["planner"] == "greedy"
        assert record["algorithm"] == "alg1"
        assert record["num_steps"] == len(record["steps"])
        assert record["num_slices"] == 1
        assert record["total_cost"] > 0

    def test_plan_slicing_caps_peak(self, qasm_file, capsys):
        main(["plan", qasm_file, "--noises", "1", "--json"])
        unsliced = json.loads(capsys.readouterr().out)
        bound = unsliced["peak_intermediate_size"] // 4
        main([
            "plan", qasm_file, "--noises", "1", "--json",
            "--max-intermediate", str(bound),
        ])
        sliced = json.loads(capsys.readouterr().out)
        assert sliced["peak_intermediate_size"] <= bound
        assert sliced["num_slices"] > 1

    def test_plan_max_steps_truncates(self, qasm_file, capsys):
        main(["plan", qasm_file, "--noises", "1", "--max-steps", "2"])
        out = capsys.readouterr().out
        assert "more steps" in out

    def test_check_accepts_planner_flags(self, qasm_file, capsys):
        code = main([
            "check", qasm_file, "--noises", "2", "--epsilon", "0.05",
            "--planner", "greedy", "--max-intermediate", "64",
            "--backend", "dense", "--json",
        ])
        record = json.loads(capsys.readouterr().out)
        assert code == 0
        assert record["stats"]["max_intermediate_size"] <= 64
        assert record["stats"]["predicted_cost"] > 0


class TestPlanSearchFlags:
    def test_plan_search_json_carries_the_report(self, qasm_file, capsys):
        code = main([
            "plan", qasm_file, "--noises", "1", "--json",
            "--planner", "anneal", "--plan-budget", "0", "--plan-seed", "9",
        ])
        record = json.loads(capsys.readouterr().out)
        assert code == 0
        assert record["planner"] == "anneal"
        assert record["search"]["planner"] == "anneal"
        assert record["search"]["seed"] == 9
        assert record["search"]["trials"] == 0  # budget 0: baseline only

    def test_plan_text_report_includes_the_search_line(self, qasm_file,
                                                       capsys):
        code = main([
            "plan", qasm_file, "--noises", "1",
            "--planner", "hyper", "--plan-budget", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "search" in out
        assert "0 trials" in out

    def test_check_accepts_search_flags(self, qasm_file, capsys):
        code = main([
            "check", qasm_file, "--noises", "2", "--epsilon", "0.05",
            "--planner", "anneal", "--plan-budget", "0", "--plan-seed", "2",
            "--backend", "dense", "--json",
        ])
        record = json.loads(capsys.readouterr().out)
        assert code == 0
        assert record["stats"]["plan_trials"] == 0

    def test_compare_json_races_every_registered_planner(self, qasm_file,
                                                         capsys):
        from repro.tensornet.planner import PLANNERS

        code = main([
            "plan", qasm_file, "--noises", "1", "--json",
            "--compare", "--plan-budget", "0.05",
        ])
        record = json.loads(capsys.readouterr().out)
        assert code == 0
        rows = record["planners"]
        assert [row["planner"] for row in rows] == list(PLANNERS)
        best = min(row["total_cost"] for row in rows)
        for row in rows:
            assert row["best"] == (row["total_cost"] == best)
            assert row["plan_seconds"] >= 0
            if row["planner"] in ("anneal", "hyper"):
                assert row["trials"] >= 1
            else:
                assert row["trials"] is None

    def test_compare_table_lists_every_planner(self, qasm_file, capsys):
        from repro.tensornet.planner import PLANNERS

        code = main([
            "plan", qasm_file, "--noises", "1",
            "--compare", "--plan-budget", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        for planner in PLANNERS:
            assert planner in out
        assert "cost" in out and "trials" in out
        assert "*" in out  # the cheapest plan is starred

    def test_plan_cache_replays_the_searched_plan(self, qasm_file, tmp_path,
                                                  capsys):
        argv = [
            "plan", qasm_file, "--noises", "1", "--json",
            "--planner", "anneal", "--plan-budget", "0.05",
            "--cache", "--cache-dir", str(tmp_path),
        ]
        main(argv)
        cold = json.loads(capsys.readouterr().out)
        assert cold["plan_cache"] == "miss"
        assert cold["search"]["trials"] >= 1
        main(argv)
        warm = json.loads(capsys.readouterr().out)
        assert warm["plan_cache"] == "hit"
        # the provenance record is cached alongside the plan itself
        assert warm["search"] == cold["search"]
        assert warm["steps"] == cold["steps"]


class TestBatchFailureIsolation:
    @pytest.fixture
    def broken_manifest(self, tmp_path, qasm_file):
        path = tmp_path / "broken.txt"
        path.write_text(
            f"{qasm_file}\n"
            "missing.qasm\n"            # unreadable file
            "a.qasm b.qasm c.qasm\n"    # malformed row
            f"{qasm_file}\n"
        )
        return str(path)

    def test_bad_rows_become_error_records(self, broken_manifest, capsys):
        code = main([
            "batch", broken_manifest, "--noises", "1", "--epsilon", "0.05",
        ])
        captured = capsys.readouterr()
        records = [json.loads(line) for line in
                   captured.out.strip().splitlines()]
        assert code == 2  # errors present -> distinct exit code
        assert [r["verdict"] for r in records] == [
            "EQUIVALENT", "ERROR", "ERROR", "EQUIVALENT",
        ]
        assert records[1]["error_type"] == "FileNotFoundError"
        assert records[2]["error_type"] == "ManifestError"
        assert [r["line"] for r in records] == [1, 2, 3, 4]
        assert "2 errors" in captured.err
        assert "2 checked" in captured.err

    def test_summary_reports_wall_and_cpu(self, broken_manifest, capsys):
        main(["batch", broken_manifest, "--noises", "1", "--epsilon", "0.05"])
        err = capsys.readouterr().err
        assert "wall " in err and "cpu " in err and "jobs=1" in err


class TestBatchJobs:
    @pytest.fixture
    def manifest4(self, tmp_path):
        paths = []
        for n in (2, 3):
            path = tmp_path / f"qft{n}.qasm"
            qasm.dump(qft(n), path)
            paths.append(str(path))
        manifest = tmp_path / "manifest.txt"
        manifest.write_text("".join(f"{p}\n" for p in paths + paths))
        return str(manifest)

    def test_jobs_output_matches_serial_order(self, manifest4, capsys):
        flags = ["--noises", "1", "--epsilon", "0.05", "--backend", "einsum"]
        code_serial = main(["batch", manifest4, *flags])
        serial = [json.loads(line) for line in
                  capsys.readouterr().out.strip().splitlines()]
        code_parallel = main(["batch", manifest4, *flags, "--jobs", "2"])
        parallel = [json.loads(line) for line in
                    capsys.readouterr().out.strip().splitlines()]
        assert code_serial == code_parallel == 0
        assert [r["ideal"] for r in parallel] == [r["ideal"] for r in serial]
        for a, b in zip(serial, parallel):
            assert b["verdict"] == a["verdict"]
            assert abs(b["fidelity"] - a["fidelity"]) < 1e-12

    def test_jobs_isolates_raising_rows(self, manifest4, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        with open(manifest4) as handle:
            lines = handle.read().splitlines()
        bad.write_text("\n".join([lines[0], "nope.qasm", lines[1]]) + "\n")
        code = main([
            "batch", str(bad), "--noises", "1", "--epsilon", "0.05",
            "--jobs", "2",
        ])
        records = [json.loads(line) for line in
                   capsys.readouterr().out.strip().splitlines()]
        assert code == 2
        assert [r["verdict"] for r in records] == [
            "EQUIVALENT", "ERROR", "EQUIVALENT",
        ]


class TestCacheFlags:
    def cache_flags(self, tmp_path):
        return ["--cache", "--cache-dir", str(tmp_path / "cache")]

    def test_check_warm_run_is_a_result_hit(self, qasm_file, tmp_path,
                                            capsys):
        flags = [
            "check", qasm_file, "--noises", "1", "--epsilon", "0.05",
            "--json", *self.cache_flags(tmp_path),
        ]
        main(flags)
        cold = json.loads(capsys.readouterr().out)
        assert cold["stats"]["result_cache_hit"] == 0
        main(flags)
        warm = json.loads(capsys.readouterr().out)
        assert warm["stats"]["result_cache_hit"] == 1
        assert warm["fidelity"] == cold["fidelity"]
        assert warm["verdict"] == cold["verdict"]

    def test_no_cache_writes_nothing(self, qasm_file, tmp_path, capsys):
        main([
            "check", qasm_file, "--noises", "1", "--epsilon", "0.05",
            "--no-cache", "--cache-dir", str(tmp_path / "cache"), "--json",
        ])
        record = json.loads(capsys.readouterr().out)
        assert record["stats"]["result_cache_hit"] == 0
        assert not (tmp_path / "cache").exists()

    def test_batch_summary_reports_hits(self, tmp_path, capsys):
        path = tmp_path / "qft2.qasm"
        qasm.dump(qft(2), path)
        manifest = tmp_path / "manifest.txt"
        manifest.write_text(f"{path}\n{path}\n")
        flags = [
            "batch", str(manifest), "--noises", "1", "--epsilon", "0.05",
            *self.cache_flags(tmp_path),
        ]
        main(flags)
        cold_err = capsys.readouterr().err
        # identical rows dedup inside one run already
        assert "result hits 1" in cold_err
        main(flags)
        warm_err = capsys.readouterr().err
        assert "result hits 2" in warm_err

    def test_batch_without_cache_keeps_old_summary(self, tmp_path, capsys):
        path = tmp_path / "qft2.qasm"
        qasm.dump(qft(2), path)
        manifest = tmp_path / "manifest.txt"
        manifest.write_text(f"{path}\n")
        main(["batch", str(manifest), "--noises", "1", "--epsilon", "0.05"])
        err = capsys.readouterr().err
        assert "result hits" not in err and "plan hits" not in err

    def test_plan_reports_hit_state(self, qasm_file, tmp_path, capsys):
        flags = [
            "plan", qasm_file, "--noises", "1", "--json",
            *self.cache_flags(tmp_path),
        ]
        main(flags)
        cold = json.loads(capsys.readouterr().out)
        assert cold["plan_cache"] == "miss"
        main(flags)
        warm = json.loads(capsys.readouterr().out)
        assert warm["plan_cache"] == "hit"
        assert warm["steps"] == cold["steps"]
        assert warm["total_cost"] == cold["total_cost"]

    def test_plan_without_cache_omits_state(self, qasm_file, capsys):
        main(["plan", qasm_file, "--noises", "1", "--json"])
        record = json.loads(capsys.readouterr().out)
        assert record["plan_cache"] is None


class TestCacheCommand:
    def populate(self, qasm_file, tmp_path):
        cache_dir = tmp_path / "cache"
        main([
            "check", qasm_file, "--noises", "1", "--epsilon", "0.05",
            "--cache", "--cache-dir", str(cache_dir),
        ])
        return cache_dir

    def test_stats_counts_kinds(self, qasm_file, tmp_path, capsys):
        cache_dir = self.populate(qasm_file, tmp_path)
        capsys.readouterr()
        code = main(["cache", "stats", "--cache-dir", str(cache_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert str(cache_dir) in out
        assert "1 plans, 1 results" in out

    def test_stats_json(self, qasm_file, tmp_path, capsys):
        cache_dir = self.populate(qasm_file, tmp_path)
        capsys.readouterr()
        code = main([
            "cache", "stats", "--cache-dir", str(cache_dir), "--json",
        ])
        record = json.loads(capsys.readouterr().out)
        assert code == 0
        assert record["entries"] == 2
        assert record["kinds"] == {"plans": 1, "results": 1, "other": 0}
        assert record["total_bytes"] > 0

    def test_stats_uses_env_dir_by_default(self, qasm_file, tmp_path,
                                           monkeypatch, capsys):
        cache_dir = self.populate(qasm_file, tmp_path)
        capsys.readouterr()
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        main(["cache", "stats", "--json"])
        record = json.loads(capsys.readouterr().out)
        assert record["entries"] == 2

    def test_clear_empties_the_store(self, qasm_file, tmp_path, capsys):
        cache_dir = self.populate(qasm_file, tmp_path)
        capsys.readouterr()
        code = main(["cache", "clear", "--cache-dir", str(cache_dir)])
        assert code == 0
        assert "removed 2 entries" in capsys.readouterr().out
        main(["cache", "stats", "--cache-dir", str(cache_dir), "--json"])
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_prune_respects_byte_budget(self, qasm_file, tmp_path, capsys):
        cache_dir = self.populate(qasm_file, tmp_path)
        capsys.readouterr()
        code = main([
            "cache", "prune", "--max-bytes", "0",
            "--cache-dir", str(cache_dir),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "pruned 2 entries" in out
        assert "0 entries / 0 bytes remain" in out

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])


class TestWireSchemaOutput:
    """CLI payloads are the version-1 wire schema — no CLI/API drift."""

    def test_check_json_carries_schema_version(self, qasm_file, capsys):
        from repro import SCHEMA_VERSION

        main([
            "check", qasm_file, "--noises", "1", "--epsilon", "0.05",
            "--json",
        ])
        record = json.loads(capsys.readouterr().out)
        assert record["schema_version"] == SCHEMA_VERSION

    def test_batch_records_carry_schema_version(self, tmp_path, capsys):
        from repro import SCHEMA_VERSION

        path = tmp_path / "qft2.qasm"
        qasm.dump(qft(2), path)
        manifest = tmp_path / "manifest.txt"
        manifest.write_text(f"{path}\nmissing.qasm\n")
        main(["batch", str(manifest), "--noises", "1", "--epsilon", "0.05"])
        records = [json.loads(line) for line in
                   capsys.readouterr().out.strip().splitlines()]
        assert [r["schema_version"] for r in records] == [SCHEMA_VERSION] * 2
        assert records[1]["error_code"] == "circuit_load_failed"

    def test_check_json_equals_engine_payload(self, qasm_file, capsys):
        """The CLI emits exactly what the Engine emits."""
        from repro import CheckRequest, CircuitSpec, Engine, NoiseSpec

        main([
            "check", qasm_file, "--noises", "2", "--epsilon", "0.05",
            "--algorithm", "alg2", "--json",
        ])
        record = json.loads(capsys.readouterr().out)
        response = Engine().check(CheckRequest(
            ideal=CircuitSpec.from_path(qasm_file),
            noise=NoiseSpec(noises=2, seed=0),
            epsilon=0.05,
            config={"algorithm": "alg2"},
        ))
        direct = response.to_dict()
        for volatile in ("time_seconds", "planning_seconds"):
            record.pop(volatile, None)
            direct.pop(volatile, None)
            record["stats"][volatile] = direct["stats"][volatile] = 0.0
        record["stats"]["cpu_seconds"] = direct["stats"]["cpu_seconds"] = 0.0
        assert record == direct

    def test_missing_file_exits_2_with_typed_error(self, capsys):
        code = main(["check", "/definitely/missing.qasm"])
        err = capsys.readouterr().err
        assert code == 2
        assert "circuit_load_failed" in err


class TestJsonManifestRows:
    @pytest.fixture
    def mixed_manifest(self, tmp_path, qasm_file):
        inline = qasm.dumps(qft(2))
        rows = [
            qasm_file,  # classic path row, CLI flags apply
            json.dumps({  # wire-schema row: library spec, own epsilon
                "ideal": {"library": "qft", "params": {"num_qubits": 2}},
                "epsilon": 0.1,
            }),
            json.dumps({  # inline QASM + noise off despite CLI flags
                "ideal": {"qasm": inline},
                "noise": None,
            }),
            json.dumps({"ideal": {"library": "unheard_of"}}),  # bad library
            json.dumps({"ideal": {"qasm": inline}, "bogus_field": 1}),
            "{not json",
        ]
        manifest = tmp_path / "mixed.jsonl"
        manifest.write_text("".join(row + "\n" for row in rows))
        return str(manifest)

    def test_mixed_rows_stream_wire_records(self, mixed_manifest, qasm_file,
                                            capsys):
        code = main([
            "batch", mixed_manifest, "--noises", "1", "--epsilon", "0.05",
        ])
        captured = capsys.readouterr()
        records = [json.loads(line) for line in
                   captured.out.strip().splitlines()]
        assert code == 2  # bad rows present
        assert [r["verdict"] for r in records] == [
            "EQUIVALENT", "EQUIVALENT", "EQUIVALENT",
            "ERROR", "ERROR", "ERROR",
        ]
        # path row keeps its path label; JSON rows get spec labels
        assert records[0]["ideal"] == qasm_file
        assert records[1]["ideal"] == "<library:qft>"
        assert records[2]["ideal"] == "<inline-qasm>"
        # row-level fields beat CLI flags
        assert records[1]["epsilon"] == 0.1
        # noise: null switches the CLI noise off -> exact equivalence
        assert records[2]["fidelity"] == pytest.approx(1.0, abs=1e-12)
        # typed error codes per failure kind
        assert records[3]["error_code"] == "invalid_circuit_spec"
        assert records[4]["error_code"] == "unknown_field"
        assert records[5]["error_type"] == "ManifestError"
        assert [r["line"] for r in records] == [1, 2, 3, 4, 5, 6]
        # index counts manifest rows (errors included), joinable to input
        assert [r["index"] for r in records] == [0, 1, 2, 3, 4, 5]

    def test_json_rows_inherit_cli_flags(self, tmp_path, capsys):
        row = {"ideal": {"library": "qft", "params": {"num_qubits": 2}}}
        manifest = tmp_path / "one.jsonl"
        manifest.write_text(json.dumps(row) + "\n")
        main([
            "batch", str(manifest), "--noises", "1", "--epsilon", "0.05",
            "--backend", "einsum",
        ])
        record = json.loads(capsys.readouterr().out.strip())
        assert record["backend"] == "einsum"
        assert record["epsilon"] == 0.05
        assert record["stats"]["terms_total"] >= 1  # noise was applied

    def test_json_rows_work_under_jobs(self, tmp_path, capsys):
        rows = [
            json.dumps({
                "ideal": {"library": "qft", "params": {"num_qubits": 2}},
                "noise": {"noises": 1, "seed": seed},
            })
            for seed in range(2)
        ]
        manifest = tmp_path / "par.jsonl"
        manifest.write_text("".join(row + "\n" for row in rows))
        flags = ["batch", str(manifest), "--epsilon", "0.05"]
        code = main(flags)
        serial = [json.loads(line)["fidelity"] for line in
                  capsys.readouterr().out.strip().splitlines()]
        code_parallel = main(flags + ["--jobs", "2"])
        parallel = [json.loads(line)["fidelity"] for line in
                    capsys.readouterr().out.strip().splitlines()]
        assert code == code_parallel == 0
        assert parallel == serial

    def test_read_manifest_rejects_json_rows(self, tmp_path):
        manifest = tmp_path / "j.jsonl"
        manifest.write_text('{"ideal": {"library": "qft"}}\n')
        with pytest.raises(ValueError, match="JSON request rows"):
            list(read_manifest(str(manifest)))

    def test_fidelity_mode_rows(self, tmp_path, capsys):
        row = {
            "ideal": {"library": "qft", "params": {"num_qubits": 2}},
            "noise": {"noises": 1, "seed": 0},
            "mode": "fidelity",
        }
        manifest = tmp_path / "f.jsonl"
        manifest.write_text(json.dumps(row) + "\n")
        code = main(["batch", str(manifest), "--epsilon", "0.05"])
        record = json.loads(capsys.readouterr().out.strip())
        assert code == 0
        assert 0.9 < record["fidelity"] <= 1.0


class TestBadFlagErrors:
    """Invalid noise flags take the typed-error exit, not a traceback."""

    def test_check_bad_noises_flag(self, qasm_file, capsys):
        code = main(["check", qasm_file, "--noises", "-1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "invalid_noise_spec" in err

    def test_fidelity_bad_noises_flag(self, qasm_file, capsys):
        code = main(["fidelity", qasm_file, "--noises", "-1"])
        assert code == 2
        assert "invalid_noise_spec" in capsys.readouterr().err

    def test_batch_bad_noises_flag(self, tmp_path, qasm_file, capsys):
        manifest = tmp_path / "m.txt"
        manifest.write_text(f"{qasm_file}\n")
        code = main(["batch", str(manifest), "--noises", "-1"])
        captured = capsys.readouterr()
        assert code == 2
        assert "invalid_noise_spec" in captured.err


class TestTraceFlag:
    def test_trace_writes_a_chrome_trace_file(self, qasm_file, tmp_path,
                                              capsys):
        out = tmp_path / "trace.json"
        code = main([
            "check", qasm_file, "--noises", "2", "--epsilon", "0.05",
            "--trace", str(out),
        ])
        stdout = capsys.readouterr().out
        assert code == 0
        assert str(out) in stdout  # the human report names the file
        doc = json.loads(out.read_text())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert all(event["ph"] == "X" for event in events)
        names = {event["name"] for event in events}
        assert "engine.request" in names
        assert "session.check" in names

    def test_trace_rides_along_in_json_output(self, qasm_file, tmp_path,
                                              capsys):
        out = tmp_path / "trace.json"
        code = main([
            "check", qasm_file, "--noises", "2", "--epsilon", "0.05",
            "--trace", str(out), "--json",
        ])
        record = json.loads(capsys.readouterr().out)
        assert code == 0
        assert record["trace"]["name"] == "engine.request"
        assert out.exists()

    def test_no_trace_flag_means_no_trace(self, qasm_file, capsys):
        main([
            "check", qasm_file, "--noises", "2", "--epsilon", "0.05",
            "--json",
        ])
        assert "trace" not in json.loads(capsys.readouterr().out)

    def test_plan_compare_reports_per_planner_traces(self, qasm_file,
                                                     capsys):
        code = main([
            "plan", qasm_file, "--noises", "1", "--json",
            "--compare", "--plan-budget", "0",
        ])
        record = json.loads(capsys.readouterr().out)
        assert code == 0
        for row in record["planners"]:
            tree = row["trace"]
            names = {tree["name"]} | {
                child["name"] for child in tree.get("children", ())
            }
            assert "plan.build" in names

    def test_plan_compare_table_has_a_trace_section(self, qasm_file,
                                                    capsys):
        code = main([
            "plan", qasm_file, "--noises", "1",
            "--compare", "--plan-budget", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace:" in out
        assert "plan.build" in out
