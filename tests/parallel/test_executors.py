"""Unit tests for the slice-level parallel execution subsystem."""

import pickle

import numpy as np
import pytest

from repro.backends import available_backends, get_backend
from repro.core.miter import algorithm_network
from repro.library import qft
from repro.noise import insert_random_noise
from repro.parallel import (
    ProcessSliceExecutor,
    SerialExecutor,
    chunk_assignments,
    make_executor,
)
from repro.parallel.executors import fold_measured_stats
from repro.parallel.worker import run_slice_chunk
from repro.tensornet import (
    ContractionStats,
    build_plan,
    iter_slice_assignments,
    slice_plan,
)

BACKENDS = ("tdd", "dense", "einsum")


@pytest.fixture(scope="module")
def sliced_workload():
    """A qft(3) alg2 network plus a plan sliced into many subplans."""
    ideal = qft(3)
    noisy = insert_random_noise(ideal, 2, seed=0)
    network = algorithm_network(noisy, ideal, "alg2")
    plan = build_plan(network)
    sliced = slice_plan(plan, max(1, plan.peak_size() // 4))
    assert sliced.num_slices() > 4  # parallelism must have work to split
    return network, sliced


@pytest.fixture(scope="module")
def reference(sliced_workload):
    network, _ = sliced_workload
    return get_backend("dense").contract_scalar(network)


@pytest.fixture(scope="module")
def pool():
    """One shared 2-worker pool for the whole module (pools are dear)."""
    with ProcessSliceExecutor(jobs=2, chunk_size=None) as executor:
        yield executor


class TestChunking:
    def test_chunks_cover_all_assignments_in_order(self):
        assignments = [{"a": i} for i in range(10)]
        chunks = chunk_assignments(assignments, jobs=2, chunk_size=3)
        assert [a for chunk in chunks for a in chunk] == assignments
        assert [len(c) for c in chunks] == [3, 3, 3, 1]

    def test_auto_chunking_targets_chunks_per_job(self):
        assignments = [{"a": i} for i in range(64)]
        chunks = chunk_assignments(assignments, jobs=2)
        assert [a for chunk in chunks for a in chunk] == assignments
        assert len(chunks) == 8  # 2 jobs * CHUNKS_PER_JOB
        assert all(len(c) == 8 for c in chunks)

    def test_small_inputs_never_produce_empty_chunks(self):
        chunks = chunk_assignments([{"a": 0}], jobs=8)
        assert chunks == [[{"a": 0}]]

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError):
            chunk_assignments([{}], jobs=1, chunk_size=0)


class TestSerialExecutor:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_matches_inline_execution(
        self, sliced_workload, reference, backend_name
    ):
        network, plan = sliced_workload
        backend = get_backend(
            backend_name, executor=SerialExecutor(chunk_size=7)
        )
        value = backend.contract_scalar(network, plan=plan)
        assert np.isclose(value, reference, atol=1e-9)

    def test_partial_sums_compose(self, sliced_workload, reference):
        """Chunked partial executions sum to the full contraction."""
        network, plan = sliced_workload
        backend = get_backend("dense")
        assignments = list(iter_slice_assignments(plan))
        cut = len(assignments) // 3
        total = sum(
            backend.contract_scalar(network, plan=plan, assignments=part)
            for part in (
                assignments[:cut], assignments[cut:2 * cut],
                assignments[2 * cut:],
            )
        )
        assert np.isclose(total, reference, atol=1e-9)


class TestProcessSliceExecutor:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_matches_serial_execution(
        self, sliced_workload, reference, pool, backend_name
    ):
        network, plan = sliced_workload
        backend = get_backend(backend_name, executor=pool)
        stats = ContractionStats()
        value = backend.contract_scalar(network, plan=plan, stats=stats)
        assert np.isclose(value, reference, atol=1e-9)
        # Measured stats flow back from the workers; predictions are
        # recorded exactly once by the dispatching backend.
        assert stats.slice_count == plan.num_slices()
        assert stats.predicted_cost == plan.total_cost()
        if backend_name == "tdd":
            assert stats.max_nodes > 0
        else:
            assert stats.max_intermediate_size > 0
            assert stats.max_intermediate_size <= plan.peak_size()

    def test_unsliced_plans_never_touch_the_pool(self, sliced_workload):
        class Exploding(ProcessSliceExecutor):
            def _ensure_pool(self):  # pragma: no cover - guard
                raise AssertionError("pool touched for an unsliced plan")

        network, _ = sliced_workload
        backend = get_backend("dense", executor=Exploding(jobs=2))
        plain = build_plan(network)
        value = backend.contract_scalar(network, plan=plain)
        ref = get_backend("dense").contract_scalar(network, plan=plain)
        assert np.isclose(value, ref, atol=1e-12)

    def test_jobs_validated(self):
        with pytest.raises(ValueError):
            ProcessSliceExecutor(jobs=0)
        with pytest.raises(ValueError):
            ProcessSliceExecutor(jobs=2, chunk_size=0)

    def test_close_is_idempotent(self):
        executor = ProcessSliceExecutor(jobs=1)
        executor.close()
        executor.close()

    def test_make_executor_resolves_jobs(self):
        assert make_executor(None) is None
        assert make_executor(1) is None
        executor = make_executor(3)
        assert isinstance(executor, ProcessSliceExecutor)
        assert executor.jobs == 3
        executor.close()


class TestWorkerTransport:
    def test_payloads_pickle(self, sliced_workload):
        """Exactly what the pool ships must survive a pickle round-trip."""
        network, plan = sliced_workload
        spec = get_backend("einsum").describe()
        chunk = list(iter_slice_assignments(plan))[:3]
        payload = pickle.dumps((spec, network, plan, chunk))
        spec2, network2, plan2, chunk2 = pickle.loads(payload)
        assert spec2 == spec
        assert plan2.num_slices() == plan.num_slices()
        assert chunk2 == chunk

    def test_run_slice_chunk_in_process(self, sliced_workload, reference):
        """The worker entry point, called directly, sums its chunk."""
        network, plan = sliced_workload
        spec = get_backend("dense").describe()
        assignments = list(iter_slice_assignments(plan))
        total = 0j
        folded = ContractionStats()
        for chunk in chunk_assignments(assignments, jobs=2, chunk_size=16):
            value, stats = run_slice_chunk(spec, network, plan, chunk)
            total += value
            fold_measured_stats(folded, stats)
        assert np.isclose(total, reference, atol=1e-9)
        assert folded.max_intermediate_size > 0

    def test_blob_variant_caches_payload_per_digest(
        self, sliced_workload, reference
    ):
        """The executor's actual task fn: payload unpickled once, cached."""
        import hashlib

        from repro.parallel.worker import (
            _WORKER_PAYLOADS,
            run_slice_chunk_blob,
        )

        network, plan = sliced_workload
        blob = pickle.dumps((network, plan), pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha1(blob).hexdigest()
        spec = get_backend("dense").describe()
        assignments = list(iter_slice_assignments(plan))
        total = 0j
        for chunk in chunk_assignments(assignments, jobs=2):
            value, _ = run_slice_chunk_blob(spec, digest, blob, chunk)
            total += value
        assert np.isclose(total, reference, atol=1e-9)
        # one payload entry, reused across chunks; a new digest evicts it
        assert list(_WORKER_PAYLOADS) == [digest]
        cached = _WORKER_PAYLOADS[digest]
        run_slice_chunk_blob(spec, digest, blob, assignments[:1])
        assert _WORKER_PAYLOADS[digest] is cached

    def test_describe_spec_rebuilds_every_backend(self):
        from repro.parallel.worker import backend_for_spec

        for name in available_backends():
            spec = get_backend(
                name, planner="greedy", max_intermediate_size=64
            ).describe()
            rebuilt = backend_for_spec(spec)
            assert rebuilt.name == name
            assert rebuilt.planner == "greedy"
            assert rebuilt.max_intermediate_size == 64
            assert rebuilt.executor is None  # workers run slices inline
            assert backend_for_spec(spec) is rebuilt  # per-worker cache
