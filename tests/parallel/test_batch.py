"""Unit tests for batch-level parallel checking (check_many jobs=N)."""

import numpy as np
import pytest

from repro.backends import DenseBackend
from repro.core import CheckConfig, CheckError, CheckResult, CheckSession
from repro.library import qft
from repro.noise import insert_random_noise


def make_pairs(count=3, noises=2):
    ideal = qft(3)
    return [
        (ideal, insert_random_noise(ideal, noises, seed=seed))
        for seed in range(count)
    ]


def bad_pair():
    """Mismatched qubit counts: check() raises ValueError."""
    return qft(2), qft(3)


class TestParallelCheckMany:
    def test_matches_serial_results_in_order(self):
        pairs = make_pairs(4)
        session = CheckSession(CheckConfig(epsilon=0.05))
        serial = list(session.check_many(pairs))
        parallel = list(session.check_many(pairs, jobs=2))
        assert len(parallel) == len(serial) == 4
        for a, b in zip(serial, parallel):
            assert isinstance(b, CheckResult)
            assert b.equivalent == a.equivalent
            assert b.algorithm == a.algorithm
            assert np.isclose(b.fidelity, a.fidelity, atol=1e-12)

    def test_results_stream_lazily_in_input_order(self):
        pairs = make_pairs(3)
        session = CheckSession(CheckConfig(epsilon=0.05))
        iterator = session.check_many(pairs, jobs=2)
        first = next(iterator)
        assert isinstance(first, CheckResult)
        rest = list(iterator)
        assert len(rest) == 2

    def test_jobs_validated(self):
        session = CheckSession()
        with pytest.raises(ValueError):
            session.check_many([], jobs=0)

    def test_empty_batch(self):
        session = CheckSession()
        assert list(session.check_many([], jobs=2)) == []

    def test_instance_backend_rejected_for_parallel_runs(self):
        session = CheckSession(CheckConfig(backend=DenseBackend()))
        with pytest.raises(ValueError, match="registry name"):
            list(session.check_many(make_pairs(1), jobs=2))

    def test_unisolated_error_propagates(self):
        session = CheckSession(CheckConfig(epsilon=0.05))
        with pytest.raises(ValueError):
            list(session.check_many([bad_pair()], jobs=2))


class TestErrorIsolation:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failing_item_becomes_error_record(self, jobs):
        pairs = make_pairs(2)
        mixed = [pairs[0], bad_pair(), pairs[1]]
        session = CheckSession(CheckConfig(epsilon=0.05))
        outcomes = list(
            session.check_many(mixed, jobs=jobs, isolate_errors=True)
        )
        assert [type(o).__name__ for o in outcomes] == [
            "CheckResult", "CheckError", "CheckResult",
        ]
        error = outcomes[1]
        assert error.verdict == "ERROR"
        assert not error.equivalent
        assert error.index == 1
        assert error.error_type == "ValueError"
        assert "qubits" in error.error
        for outcome in (outcomes[0], outcomes[2]):
            assert outcome.equivalent

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_all_failures_still_yield_one_record_each(self, jobs):
        session = CheckSession(CheckConfig(epsilon=0.05))
        outcomes = list(
            session.check_many(
                [bad_pair(), bad_pair()], jobs=jobs, isolate_errors=True
            )
        )
        assert len(outcomes) == 2
        assert all(isinstance(o, CheckError) for o in outcomes)
        assert [o.index for o in outcomes] == [0, 1]

    def test_error_record_serialises(self):
        error = CheckError(error="boom", error_type="RuntimeError", index=3)
        record = error.to_dict()
        assert record["verdict"] == "ERROR"
        assert record["equivalent"] is False
        assert record["index"] == 3
        import json

        assert json.loads(error.to_json())["error"] == "boom"
