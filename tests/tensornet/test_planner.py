"""Unit tests for the contraction-plan IR and planners."""

import warnings

import numpy as np
import pytest

from repro.backends import available_backends, get_backend
from repro.library import qft
from repro.tensornet import (
    ContractionStats,
    Tensor,
    TensorNetwork,
    build_plan,
    circuit_to_network,
    close_trace,
    greedy_plan,
    plan_from_order,
    slice_plan,
)
from repro.tensornet.planner import _apply_assignment, iter_slice_assignments


def qft_network(n=3):
    return close_trace(circuit_to_network(qft(n)))


class TestPlanConstruction:
    def test_connected_network_plans_n_minus_1_steps(self):
        net = qft_network()
        plan = plan_from_order(net)
        assert len(plan.steps) == len(net.tensors) - 1
        plan.validate()

    def test_plan_records_costs_and_width(self):
        plan = plan_from_order(qft_network())
        assert plan.total_cost() > 0
        assert plan.peak_size() >= 1
        assert plan.width() >= 1
        assert plan.num_slices() == 1
        assert all(step.flops >= step.output_size for step in plan.steps)

    def test_explicit_order_wins_over_method(self):
        net = qft_network()
        order = sorted(net.all_indices())
        plan = plan_from_order(net, order=order)
        assert list(plan.order) == order

    def test_greedy_plan_valid_and_distinct(self):
        net = qft_network()
        plan = greedy_plan(net)
        plan.validate()
        assert plan.planner == "greedy"
        # its order must still cover every index (TDD manager seed)
        assert sorted(plan.order) == sorted(net.all_indices())

    def test_open_network_rejected(self):
        net = TensorNetwork([Tensor(np.eye(2), ["a", "b"])])
        with pytest.raises(ValueError, match="open"):
            plan_from_order(net)

    def test_unknown_planner_rejected(self):
        with pytest.raises(ValueError, match="planner"):
            build_plan(qft_network(), planner="magic")

    def test_report_and_dict(self):
        plan = build_plan(qft_network(), max_intermediate_size=8)
        report = plan.report()
        assert "predicted flops" in report
        assert "peak intermediate: " in report
        record = plan.to_dict()
        assert record["num_steps"] == len(plan.steps)
        assert record["num_slices"] == plan.num_slices()
        assert record["peak_intermediate_size"] <= 8


class TestSlicing:
    def test_noop_below_bound_returns_same_plan(self):
        plan = plan_from_order(qft_network())
        assert slice_plan(plan, plan.peak_size()) is plan

    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError):
            slice_plan(plan_from_order(qft_network()), 0)

    def test_extreme_bound_warns_about_slice_blowup(self):
        net = close_trace(circuit_to_network(qft(5)))
        with pytest.warns(RuntimeWarning, match="subplan executions"):
            sliced = slice_plan(plan_from_order(net), 1)
        assert sliced.peak_size() == 1

    def test_slice_counts_multiply_dimensions(self):
        plan = slice_plan(plan_from_order(qft_network()), 4)
        expected = 1
        for label in plan.slices:
            expected *= plan.dims[label]
        assert plan.num_slices() == expected > 1

    def test_iter_assignments_covers_product(self):
        plan = slice_plan(plan_from_order(qft_network()), 4)
        assignments = list(iter_slice_assignments(plan))
        assert len(assignments) == plan.num_slices()
        assert len({tuple(sorted(a.items())) for a in assignments}) == len(
            assignments
        )

    def test_slice_assignment_drops_fixed_axes(self):
        net = qft_network()
        plan = slice_plan(plan_from_order(net), 4)
        assignment = next(iter_slice_assignments(plan))
        flat = [t.self_trace() for t in net.tensors]
        for tensor in _apply_assignment(flat, assignment):
            assert not set(tensor.indices) & set(plan.slices)


class TestPlanExecution:
    def test_all_backends_execute_the_same_plan_object(self):
        """Acceptance: one ContractionPlan drives tdd, dense and einsum."""
        net = qft_network()
        plan = build_plan(net)
        reference = net.contract_scalar()
        values = {
            name: get_backend(name).contract_scalar(net, plan=plan)
            for name in ("tdd", "dense", "einsum")
        }
        for name, value in values.items():
            assert np.isclose(value, reference, atol=1e-9), name
        spread = max(
            abs(a - b) for a in values.values() for b in values.values()
        )
        assert spread < 1e-9

    def test_slicing_caps_max_intermediate_size(self):
        """Acceptance: the slicing bound provably caps the actual stat."""
        net = qft_network()
        unsliced = ContractionStats()
        reference = get_backend("dense").contract_scalar(net, stats=unsliced)
        bound = unsliced.max_intermediate_size // 4
        assert unsliced.max_intermediate_size > bound  # bound genuinely binds
        for name in ("dense", "einsum"):
            stats = ContractionStats()
            value = get_backend(
                name, max_intermediate_size=bound
            ).contract_scalar(net, stats=stats)
            assert stats.max_intermediate_size <= bound, name
            assert stats.slice_count > 1
            assert stats.predicted_peak_size <= bound
            assert np.isclose(value, reference, atol=1e-9), name

    def test_tdd_ablation_mode_uses_each_plans_own_order(self):
        """share_intermediates=False must give every contraction a cold
        manager ordered by its *own* plan, not the first network's."""
        backend = get_backend("tdd", share_intermediates=False)
        warmup = qft_network(2)
        backend.contract_scalar(warmup)  # seeds the shared-order manager
        net = qft_network(3)
        cold_stats = ContractionStats()
        value = backend.contract_scalar(net, stats=cold_stats)
        fresh_stats = ContractionStats()
        get_backend("tdd", share_intermediates=False).contract_scalar(
            net, stats=fresh_stats
        )
        # Same network, same plan -> identical peak node count whether or
        # not another circuit ran first.
        assert cold_stats.max_nodes == fresh_stats.max_nodes
        assert np.isclose(value, net.contract_scalar(), atol=1e-9)

    def test_tdd_backend_executes_sliced_plans(self):
        net = qft_network()
        reference = net.contract_scalar()
        stats = ContractionStats()
        value = get_backend(
            "tdd", max_intermediate_size=4
        ).contract_scalar(net, stats=stats)
        assert stats.slice_count > 1
        assert np.isclose(value, reference, atol=1e-9)

    def test_predicted_peak_matches_dense_actual(self):
        """The cost model predicts exactly what the dense engine builds."""
        net = qft_network()
        stats = ContractionStats()
        get_backend("dense").contract_scalar(net, stats=stats)
        assert stats.predicted_peak_size == stats.max_intermediate_size
        assert stats.predicted_cost > 0

    @pytest.mark.parametrize("name", sorted(["tdd", "dense", "einsum"]))
    def test_every_registered_backend_accepts_planner_knobs(self, name):
        assert name in available_backends()
        backend = get_backend(
            name, planner="greedy", max_intermediate_size=64
        )
        description = backend.describe()
        assert description["planner"] == "greedy"
        assert description["max_intermediate_size"] == 64


class TestBackendPlanProtocol:
    def test_plan_for_caches_per_structure(self):
        backend = get_backend("dense")
        net = qft_network()
        assert backend.plan_for(net) is backend.plan_for(net.copy())
        backend.reset()
        assert len(backend._plan_cache) == 0

    def test_order_for_is_a_deprecated_shim(self):
        backend = get_backend("dense")
        net = qft_network()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            order = backend.order_for(net)
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert sorted(order) == sorted(net.all_indices())


class TestSliceHardCap:
    def test_explicit_max_slices_raises_on_blowup(self):
        net = qft_network()
        plan = plan_from_order(net)
        sliced = slice_plan(plan, 4)
        assert sliced.num_slices() > 2
        with pytest.raises(ValueError, match="max_slices"):
            slice_plan(plan, 4, max_slices=2)

    def test_cap_at_or_above_slice_count_passes(self):
        plan = plan_from_order(qft_network())
        sliced = slice_plan(plan, 4)
        again = slice_plan(plan, 4, max_slices=sliced.num_slices())
        assert again.num_slices() == sliced.num_slices()

    def test_default_cap_is_the_module_constant(self):
        from repro.tensornet import SLICE_HARD_LIMIT

        assert SLICE_HARD_LIMIT > 2**20  # far above any sane workload

    def test_max_slices_validated(self):
        plan = plan_from_order(qft_network())
        with pytest.raises(ValueError, match="max_slices"):
            slice_plan(plan, 4, max_slices=0)

    def test_build_plan_forwards_max_slices(self):
        net = qft_network()
        with pytest.raises(ValueError, match="max_slices"):
            build_plan(net, max_intermediate_size=4, max_slices=2)

    def test_cap_error_names_the_sliced_indices(self):
        """An actionable error tells you *which* indices blew up, not
        just how many subplans they imply."""
        net = qft_network()
        plan = plan_from_order(net)
        sliced = slice_plan(plan, 4)
        with pytest.raises(ValueError) as excinfo:
            slice_plan(plan, 4, max_slices=2)
        message = str(excinfo.value)
        assert str(sliced.num_slices()) in message
        for label in sliced.slices:
            assert label in message

    def test_warning_names_the_sliced_indices(self):
        net = close_trace(circuit_to_network(qft(5)))
        with pytest.warns(RuntimeWarning) as caught:
            sliced = slice_plan(plan_from_order(net), 1)
        [warning] = caught.list
        message = str(warning.message)
        assert str(sliced.num_slices()) in message
        assert "sliced indices" in message
        for label in sliced.slices:
            assert label in message


class TestSliceApplier:
    def test_precomputed_applier_matches_legacy_helper(self):
        from repro.tensornet import SliceApplier

        net = qft_network()
        plan = slice_plan(plan_from_order(net), 4)
        applier = SliceApplier(net.tensors, plan.slices)
        flat = [t.self_trace() for t in net.tensors]
        for assignment in iter_slice_assignments(plan):
            fast = applier(assignment)
            slow = _apply_assignment(flat, assignment)
            for a, b in zip(fast, slow):
                assert a.indices == b.indices
                assert np.array_equal(a.data, b.data)

    def test_empty_assignment_returns_self_traced_operands(self):
        from repro.tensornet import SliceApplier

        net = qft_network()
        applier = SliceApplier(net.tensors, [])
        operands = applier({})
        assert len(operands) == len(net.tensors)
        for tensor in operands:
            assert len(set(tensor.indices)) == len(tensor.indices)


class TestSliceDeterminism:
    """Sliced-plan digests must be stable across Python hash seeds.

    ``slice_plan`` breaks occurrence/size ties on the label *name* —
    never on dict or set iteration order — so the same network always
    slices the same indices and lands on the same digest (and therefore
    the same plan-cache key) in every process.
    """

    def test_occurrence_and_size_ties_break_on_the_label_name(self):
        t_mid = Tensor(np.ones((2, 2, 2)), ["a", "z", "b"])
        t_end = Tensor(np.ones((2, 2)), ["a", "z"])
        t_cap = Tensor(np.ones(2), ["b"])
        net = TensorNetwork([t_mid, t_end, t_cap])
        plan = plan_from_order(net, order=["b", "a", "z"])
        assert plan.peak_size() == 4  # the (a, z) intermediate
        sliced = slice_plan(plan, 2)
        # "a" and "z" tie on occurrences (1) and dimension (2): the
        # lexicographically smallest name must win, deterministically.
        assert sliced.slices == ("a",)

    def test_sliced_digest_is_identical_across_hash_seeds(self):
        import os
        import subprocess
        import sys
        from pathlib import Path

        code = (
            "from repro.library import qft\n"
            "from repro.tensornet import (circuit_to_network, close_trace,"
            " greedy_plan, plan_from_order, slice_plan)\n"
            "net = close_trace(circuit_to_network(qft(4)))\n"
            "for plan in (plan_from_order(net), greedy_plan(net)):\n"
            "    print(slice_plan(plan, 4).digest())\n"
        )
        src = str(Path(__file__).resolve().parents[2] / "src")
        digests = set()
        for hash_seed in ("0", "1", "42"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = src
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, env=env, check=True,
            )
            digests.add(proc.stdout)
        assert len(digests) == 1  # one digest pair, whatever the seed
