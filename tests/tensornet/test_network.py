"""Unit tests for TensorNetwork and the dense contraction engine."""

import numpy as np
import pytest

from repro.tensornet import (
    ContractionStats,
    Tensor,
    TensorNetwork,
    identity_tensor,
    scalar_tensor,
)


def matrix_tensor(mat, out, inp):
    return Tensor(np.asarray(mat, dtype=complex), [out, inp])


class TestBookkeeping:
    def test_all_indices_order(self):
        net = TensorNetwork([
            identity_tensor("a", "b"), identity_tensor("b", "c"),
        ])
        assert net.all_indices() == ["a", "b", "c"]

    def test_open_indices(self):
        net = TensorNetwork([
            identity_tensor("a", "b"), identity_tensor("b", "c"),
        ])
        assert net.open_indices() == ["a", "c"]

    def test_validate_rejects_triples(self):
        net = TensorNetwork([
            identity_tensor("a", "b"),
            identity_tensor("a", "c"),
            identity_tensor("a", "d"),
        ])
        with pytest.raises(ValueError):
            net.validate()


class TestContraction:
    def test_matrix_chain(self, rng):
        a = rng.normal(size=(2, 2))
        b = rng.normal(size=(2, 2))
        c = rng.normal(size=(2, 2))
        net = TensorNetwork([
            matrix_tensor(a, "i", "j"),
            matrix_tensor(b, "j", "k"),
            matrix_tensor(c, "k", "l"),
        ])
        out = net.contract()
        result = out.transpose(["i", "l"]).data
        assert np.allclose(result, a @ b @ c)

    def test_closed_ring_trace(self, rng):
        a = rng.normal(size=(2, 2))
        b = rng.normal(size=(2, 2))
        net = TensorNetwork([
            matrix_tensor(a, "i", "j"),
            matrix_tensor(b, "j", "i"),
        ])
        assert np.isclose(net.contract_scalar(), np.trace(a @ b))

    def test_disconnected_components(self, rng):
        a = rng.normal(size=(2, 2))
        b = rng.normal(size=(2, 2))
        net = TensorNetwork([
            matrix_tensor(a, "i", "i"),
            matrix_tensor(b, "j", "j"),
        ])
        # Each tensor has a self-loop -> product of traces.
        assert np.isclose(
            net.contract_scalar(), np.trace(a) * np.trace(b)
        )

    def test_scalar_factors(self):
        net = TensorNetwork([scalar_tensor(2.0), scalar_tensor(3j)])
        assert net.contract_scalar() == 6j

    def test_order_does_not_change_value(self, rng):
        mats = [rng.normal(size=(2, 2)) for _ in range(4)]
        labels = ["a", "b", "c", "d"]
        tensors = [
            matrix_tensor(mats[i], labels[i], labels[(i + 1) % 4])
            for i in range(4)
        ]
        expected = np.trace(mats[0] @ mats[1] @ mats[2] @ mats[3])
        for order in (["a", "b", "c", "d"], ["d", "b", "a", "c"],
                      ["c", "a", "d", "b"]):
            net = TensorNetwork(list(tensors))
            assert np.isclose(net.contract_scalar(order=order), expected)

    def test_stats_collected(self, rng):
        net = TensorNetwork([
            matrix_tensor(rng.normal(size=(2, 2)), "i", "j"),
            matrix_tensor(rng.normal(size=(2, 2)), "j", "i"),
        ])
        stats = ContractionStats()
        net.contract_scalar(stats=stats)
        assert stats.num_pairwise_contractions >= 1

    def test_open_network_keeps_legs(self, rng):
        net = TensorNetwork([
            matrix_tensor(rng.normal(size=(2, 2)), "i", "j"),
            matrix_tensor(rng.normal(size=(2, 2)), "j", "k"),
        ])
        out = net.contract()
        assert set(out.indices) == {"i", "k"}


class TestLineGraph:
    def test_edges(self):
        net = TensorNetwork([
            Tensor(np.zeros((2, 2, 2)), ["a", "b", "c"]),
        ])
        edges = net.line_graph_edges()
        assert frozenset(("a", "b")) in edges
        assert frozenset(("a", "c")) in edges
        assert frozenset(("b", "c")) in edges
        assert len(edges) == 3
