"""Unit tests for contraction-order heuristics."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.library import qft
from repro.tensornet import (
    ORDER_HEURISTICS,
    circuit_to_network,
    close_trace,
    contraction_order,
    interaction_graph,
    min_fill_order,
    sequential_order,
    tree_decomposition_order,
)


def sample_network():
    circuit = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2).t(2)
    return close_trace(circuit_to_network(circuit))


class TestOrders:
    @pytest.mark.parametrize("method", sorted(ORDER_HEURISTICS))
    def test_order_is_permutation_of_indices(self, method):
        net = sample_network()
        order = contraction_order(net, method)
        assert sorted(order) == sorted(net.all_indices())

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            contraction_order(sample_network(), "magic")

    @pytest.mark.parametrize("method", sorted(ORDER_HEURISTICS))
    def test_all_orders_give_same_trace(self, method):
        circuit = qft(3)
        net = close_trace(circuit_to_network(circuit))
        order = contraction_order(net, method)
        value = net.contract_scalar(order=order)
        assert np.isclose(value, np.trace(circuit.to_matrix()))

    def test_sequential_is_first_occurrence(self):
        net = sample_network()
        assert sequential_order(net) == net.all_indices()


class TestInteractionGraph:
    def test_vertices_are_indices(self):
        net = sample_network()
        graph = interaction_graph(net)
        assert set(graph.nodes) == set(net.all_indices())

    def test_cooccurring_indices_connected(self):
        net = sample_network()
        graph = interaction_graph(net)
        for tensor in net.tensors:
            labels = list(dict.fromkeys(tensor.indices))
            for i, a in enumerate(labels):
                for b in labels[i + 1:]:
                    assert graph.has_edge(a, b)


class TestTreeDecomposition:
    def test_covers_isolated_vertices(self):
        # A network with a disconnected scalar-ish component.
        from repro.tensornet import TensorNetwork, identity_tensor

        net = TensorNetwork([
            identity_tensor("a", "b"),
            identity_tensor("c", "d"),
        ])
        order = tree_decomposition_order(net)
        assert sorted(order) == ["a", "b", "c", "d"]

    def test_quality_on_ladder(self):
        """On a QFT trace network the tree order should not be worse than
        sequential by more than the intermediate-size metric."""
        from repro.tensornet import ContractionStats

        circuit = qft(4)
        net = close_trace(circuit_to_network(circuit))
        seq_stats, tree_stats = ContractionStats(), ContractionStats()
        net.copy().contract_scalar(
            order=sequential_order(net), stats=seq_stats
        )
        net.copy().contract_scalar(
            order=tree_decomposition_order(net), stats=tree_stats
        )
        assert (
            tree_stats.max_intermediate_size
            <= max(seq_stats.max_intermediate_size, 64)
        )


def _min_fill_order_reference(network):
    """The original full-recount min-fill implementation.

    Kept verbatim (modulo renames) as the oracle for the incremental
    version: same ``(fill, degree, label)`` selection key, recomputing
    every vertex's fill from scratch each round.
    """
    graph = interaction_graph(network)
    adjacency = {v: set(graph[v]) for v in graph.nodes}
    order = []
    while adjacency:
        best, best_key = None, None
        for vertex, nbrs in adjacency.items():
            fill = 0
            nbr_list = list(nbrs)
            for i, a in enumerate(nbr_list):
                fill += sum(
                    1 for b in nbr_list[i + 1:] if b not in adjacency[a]
                )
            key = (fill, len(nbrs), vertex)
            if best_key is None or key < best_key:
                best, best_key = vertex, key
        order.append(best)
        nbrs = adjacency.pop(best)
        for a in nbrs:
            adjacency[a].discard(best)
        nbr_list = list(nbrs)
        for i, a in enumerate(nbr_list):
            for b in nbr_list[i + 1:]:
                adjacency[a].add(b)
                adjacency[b].add(a)
    return order


class TestMinFill:
    def test_deterministic(self):
        net = sample_network()
        assert min_fill_order(net) == min_fill_order(net)

    @pytest.mark.parametrize("circuit_factory", [
        lambda: qft(3),
        lambda: qft(5),
        lambda: QuantumCircuit(4).h(0).cx(0, 1).cx(1, 2).cx(2, 3).t(3),
        lambda: sample_circuit(),
    ])
    def test_incremental_byte_identical_to_reference(self, circuit_factory):
        """The incremental fill bookkeeping must not change the output."""
        net = close_trace(circuit_to_network(circuit_factory()))
        assert min_fill_order(net) == _min_fill_order_reference(net)

    def test_incremental_byte_identical_on_noisy_doubled_networks(self):
        from repro.core.miter import alg2_trace_network
        from repro.noise import insert_random_noise

        for seed in range(3):
            ideal = qft(3)
            noisy = insert_random_noise(ideal, 2, seed=seed)
            net = alg2_trace_network(noisy, ideal)
            assert min_fill_order(net) == _min_fill_order_reference(net)


def sample_circuit():
    import numpy as np

    rng = np.random.default_rng(7)
    circuit = QuantumCircuit(5)
    for _ in range(20):
        a, b = rng.choice(5, size=2, replace=False)
        if rng.random() < 0.5:
            circuit.cx(int(a), int(b))
        else:
            circuit.h(int(a)).t(int(b))
    return circuit
