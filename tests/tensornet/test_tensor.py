"""Unit tests for named-index tensors."""

import numpy as np
import pytest

from repro.tensornet import Tensor, gate_tensor, identity_tensor, scalar_tensor


class TestConstruction:
    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros((2, 2)), ["a"])

    def test_scalar_tensor(self):
        t = scalar_tensor(3 + 4j)
        assert t.rank == 0
        assert t.scalar() == 3 + 4j

    def test_scalar_of_open_tensor_fails(self):
        with pytest.raises(ValueError):
            identity_tensor("a", "b").scalar()


class TestOperations:
    def test_conjugate(self, rng):
        data = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        t = Tensor(data, ["a", "b"]).conjugate()
        assert np.allclose(t.data, np.conjugate(data))

    def test_relabel(self):
        t = identity_tensor("a", "b").relabel({"a": "x"})
        assert t.indices == ("x", "b")

    def test_transpose(self, rng):
        data = rng.normal(size=(2, 2, 2))
        t = Tensor(data, ["a", "b", "c"]).transpose(["c", "a", "b"])
        assert t.indices == ("c", "a", "b")
        assert np.allclose(t.data, np.transpose(data, (2, 0, 1)))

    def test_transpose_rejects_bad_labels(self):
        with pytest.raises(ValueError):
            identity_tensor("a", "b").transpose(["a", "x"])


class TestSelfTrace:
    def test_identity_loop_gives_two(self):
        t = identity_tensor("a", "a").self_trace()
        assert t.rank == 0
        assert np.isclose(t.scalar(), 2.0)

    def test_partial_loop(self, rng):
        data = rng.normal(size=(2, 2, 2))
        t = Tensor(data, ["a", "a", "b"]).self_trace()
        assert t.indices == ("b",)
        assert np.allclose(t.data, np.trace(data, axis1=0, axis2=1))

    def test_noop_when_unique(self):
        t = identity_tensor("a", "b")
        assert t.self_trace() is t or t.self_trace().indices == t.indices

    def test_triple_repeat_rejected(self):
        data = np.zeros((2, 2, 2))
        with pytest.raises(ValueError):
            Tensor(data, ["a", "a", "a"]).self_trace()


class TestContract:
    def test_matrix_product(self, rng):
        a = rng.normal(size=(2, 2))
        b = rng.normal(size=(2, 2))
        ta = Tensor(a, ["i", "j"])
        tb = Tensor(b, ["j", "k"])
        out = ta.contract(tb)
        assert out.indices == ("i", "k")
        assert np.allclose(out.data, a @ b)

    def test_outer_product(self, rng):
        a = rng.normal(size=2)
        b = rng.normal(size=2)
        out = Tensor(a, ["i"]).contract(Tensor(b, ["j"]))
        assert np.allclose(out.data, np.outer(a, b))

    def test_full_inner_product(self, rng):
        a = rng.normal(size=(2, 2))
        b = rng.normal(size=(2, 2))
        out = Tensor(a, ["i", "j"]).contract(Tensor(b, ["i", "j"]))
        assert np.isclose(out.scalar(), np.sum(a * b))


class TestGateTensor:
    def test_axis_layout(self):
        cx = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]],
            dtype=complex,
        )
        t = gate_tensor(cx, ["o0", "o1"], ["i0", "i1"])
        assert t.indices == ("o0", "o1", "i0", "i1")
        # CX: input |10> -> output |11>: entry [1,1,1,0] == 1.
        assert t.data[1, 1, 1, 0] == 1

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            gate_tensor(np.eye(4), ["a"], ["b"])

    def test_in_out_count_mismatch(self):
        with pytest.raises(ValueError):
            gate_tensor(np.eye(4), ["a", "b"], ["c"])

    def test_reconstruction(self, rng):
        mat = rng.normal(size=(4, 4))
        t = gate_tensor(mat, ["o0", "o1"], ["i0", "i1"])
        back = t.data.reshape(4, 4)
        assert np.allclose(back, mat)
