"""Unit tests for circuit -> tensor network conversion and closure."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, eliminate_final_swaps
from repro.library import qft
from repro.noise import bit_flip
from repro.tensornet import (
    circuit_to_network,
    circuit_trace,
    close_trace,
    connect,
)


class TestConversion:
    def test_labels_advance_per_wire(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        cnet = circuit_to_network(circuit)
        assert cnet.input_labels == ["q0.0", "q1.0"]
        assert cnet.output_labels == ["q0.2", "q1.1"]

    def test_noise_rejected(self):
        circuit = QuantumCircuit(1)
        circuit.append(bit_flip(0.9), [0])
        with pytest.raises(ValueError):
            circuit_to_network(circuit)

    def test_prefix(self):
        cnet = circuit_to_network(QuantumCircuit(1).h(0), prefix="L.")
        assert cnet.input_labels == ["L.q0.0"]

    def test_open_contraction_matches_matrix(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).s(1)
        cnet = circuit_to_network(circuit)
        result = cnet.network.contract()
        out = result.transpose(cnet.output_labels + cnet.input_labels)
        assert np.allclose(out.data.reshape(4, 4), circuit.to_matrix())


class TestCloseTrace:
    def test_trace_of_unitary(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).t(0)
        value = circuit_trace(circuit)
        assert np.isclose(value, np.trace(circuit.to_matrix()))

    def test_empty_circuit(self):
        assert np.isclose(circuit_trace(QuantumCircuit(3)), 8.0)

    def test_partially_empty_wires(self):
        circuit = QuantumCircuit(3).h(0)  # wires 1, 2 untouched
        value = circuit_trace(circuit)
        expected = np.trace(circuit.to_matrix())
        assert np.isclose(value, expected)

    def test_permutation_closure_swap(self):
        circuit = QuantumCircuit(2).h(0).swap(0, 1)
        stripped, perm = eliminate_final_swaps(circuit)
        net = close_trace(circuit_to_network(stripped), permutation=perm)
        value = net.contract_scalar()
        assert np.isclose(value, np.trace(circuit.to_matrix()))

    def test_permutation_closure_qft(self):
        circuit = qft(4)
        stripped, perm = eliminate_final_swaps(circuit)
        net = close_trace(circuit_to_network(stripped), permutation=perm)
        assert np.isclose(
            net.contract_scalar(), np.trace(circuit.to_matrix())
        )

    def test_permutation_of_untouched_wires(self):
        # Closing an empty 2-qubit circuit through a swap computes
        # tr(SWAP) = 2.
        circuit = QuantumCircuit(2)
        net = close_trace(circuit_to_network(circuit), permutation=[1, 0])
        assert np.isclose(net.contract_scalar(), 2.0)

    def test_bad_permutation(self):
        circuit = QuantumCircuit(2).h(0)
        with pytest.raises(ValueError):
            close_trace(circuit_to_network(circuit), permutation=[0, 0])


class TestConnect:
    def test_serial_composition(self):
        a = QuantumCircuit(2).h(0).cx(0, 1)
        b = QuantumCircuit(2).s(1).cx(1, 0)
        joined = connect(circuit_to_network(a), circuit_to_network(b, "B."))
        result = joined.network.contract()
        out = result.transpose(joined.output_labels + joined.input_labels)
        expected = b.to_matrix() @ a.to_matrix()
        assert np.allclose(out.data.reshape(4, 4), expected)

    def test_width_mismatch(self):
        a = circuit_to_network(QuantumCircuit(1).h(0))
        b = circuit_to_network(QuantumCircuit(2).h(0), "B.")
        with pytest.raises(ValueError):
            connect(a, b)


class TestBackendAgreement:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_qft_trace_matches_dense(self, n):
        circuit = qft(n)
        assert np.isclose(
            circuit_trace(circuit), np.trace(circuit.to_matrix())
        )
