"""Golden wire-schema fixtures: version-1 payloads pinned byte-stable.

The fixtures under ``tests/api/fixtures`` are the committed contract of
``schema_version == "1"``.  A diff here is a wire-schema change: if it
is additive, regenerate the fixtures (see ``_regenerate``); if it
renames or retypes a field, that is a schema break and needs a version
bump plus back-compat parsing.

Timing fields (wall clocks and per-term timings) are the one sanctioned
instability: they are zeroed before comparison, everything else must
match byte for byte.
"""

import json
from pathlib import Path

from repro import (
    SCHEMA_VERSION,
    CheckRequest,
    CheckResponse,
    CircuitSpec,
    Engine,
    NoiseSpec,
)
from repro.api.errors import CircuitLoadError

FIXTURES = Path(__file__).parent / "fixtures"

#: stats fields a golden comparison zeroes (machine-dependent timings)
TIMING_STATS = {
    "time_seconds": 0.0,
    "cpu_seconds": 0.0,
    "planning_seconds": 0.0,
    "term_times": [],
}


def golden_request() -> CheckRequest:
    return CheckRequest(
        ideal=CircuitSpec.from_library("qft", num_qubits=2),
        noisy=None,
        noise=NoiseSpec(channel="depolarizing", p=0.999, noises=1, seed=0),
        epsilon=0.05,
        mode="check",
        config={"algorithm": "alg2", "backend": "tdd"},
    )


def golden_error_response() -> CheckResponse:
    return CheckResponse.from_error(
        CircuitLoadError(
            "no such file: missing.qasm",
            error_type="FileNotFoundError",
            index=3,
        )
    )


def normalise(record: dict) -> dict:
    record = json.loads(json.dumps(record))  # deep copy, JSON types only
    if "time_seconds" in record:
        record["time_seconds"] = 0.0
    if isinstance(record.get("stats"), dict):
        record["stats"].update(TIMING_STATS)
    return record


def canonical(record: dict) -> str:
    return json.dumps(record, indent=2, sort_keys=False) + "\n"


def load(name: str) -> dict:
    with open(FIXTURES / name) as handle:
        return json.load(handle)


class TestGoldenRequest:
    def test_request_payload_is_byte_stable(self):
        fixture = (FIXTURES / "request_v1.json").read_text()
        assert canonical(golden_request().to_dict()) == fixture

    def test_fixture_parses_back_to_the_request(self):
        assert CheckRequest.from_dict(load("request_v1.json")) == \
            golden_request()

    def test_fixture_declares_current_version(self):
        assert load("request_v1.json")["schema_version"] == SCHEMA_VERSION


class TestGoldenResponse:
    def test_response_payload_is_byte_stable_modulo_timing(self):
        fixture = (FIXTURES / "response_v1.json").read_text()
        response = Engine().check(golden_request())
        assert canonical(normalise(response.to_dict())) == fixture

    def test_fixture_parses_back_losslessly(self):
        record = load("response_v1.json")
        parsed = CheckResponse.from_dict(record)
        assert parsed.ok
        assert canonical(parsed.to_dict()) == canonical(record)

    def test_cli_json_emits_the_same_schema(self, tmp_path, capsys):
        """check --json output == API payload: one schema, not two."""
        from repro.circuits import qasm
        from repro.cli import main
        from repro.library import qft

        path = tmp_path / "qft2.qasm"
        qasm.dump(qft(2), path)
        main([
            "check", str(path), "--noises", "1", "--epsilon", "0.05",
            "--algorithm", "alg2", "--json",
        ])
        record = json.loads(capsys.readouterr().out)
        fixture = load("response_v1.json")
        assert normalise(record) == normalise(fixture)


class TestGoldenError:
    def test_error_payload_is_byte_stable(self):
        fixture = (FIXTURES / "error_v1.json").read_text()
        assert canonical(golden_error_response().to_dict()) == fixture

    def test_fixture_parses_back_to_equal_response(self):
        assert CheckResponse.from_dict(load("error_v1.json")) == \
            golden_error_response()


def _regenerate():  # pragma: no cover - maintenance hook
    """Rewrite the fixtures from the current schema (run by hand)."""
    (FIXTURES / "request_v1.json").write_text(
        canonical(golden_request().to_dict())
    )
    (FIXTURES / "response_v1.json").write_text(
        canonical(normalise(Engine().check(golden_request()).to_dict()))
    )
    (FIXTURES / "error_v1.json").write_text(
        canonical(golden_error_response().to_dict())
    )


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
