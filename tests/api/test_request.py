"""Unit tests for the wire-schema request types."""

import json

import pytest

from repro import CheckConfig, CheckRequest, CircuitSpec, NoiseSpec, qft
from repro.api import (
    CONFIG_OVERRIDE_FIELDS,
    CircuitLoadError,
    CircuitSpecError,
    ConfigError,
    InvalidRequestError,
    NoiseSpecError,
    SchemaVersionError,
    UnknownFieldError,
)
from repro.circuits import qasm


class TestCircuitSpec:
    def test_exactly_one_source_required(self):
        with pytest.raises(CircuitSpecError):
            CircuitSpec()
        with pytest.raises(CircuitSpecError):
            CircuitSpec(qasm="x", path="y")
        with pytest.raises(CircuitSpecError):
            CircuitSpec(circuit=qft(2), path="y")

    def test_params_only_with_library(self):
        with pytest.raises(CircuitSpecError):
            CircuitSpec(qasm="x", params={"n": 1})

    def test_inline_resolves(self):
        text = qasm.dumps(qft(2))
        circuit = CircuitSpec.inline(text).resolve()
        assert circuit.num_qubits == 2

    def test_path_resolves(self, tmp_path):
        path = tmp_path / "c.qasm"
        qasm.dump(qft(3), path)
        assert CircuitSpec.from_path(path).resolve().num_qubits == 3

    def test_library_resolves_with_params(self):
        spec = CircuitSpec.from_library("qft", num_qubits=4)
        assert spec.resolve().num_qubits == 4

    def test_unknown_library_lists_choices(self):
        with pytest.raises(CircuitSpecError, match="qft"):
            CircuitSpec.from_library("nope").resolve()

    def test_missing_file_is_typed_load_error(self):
        with pytest.raises(CircuitLoadError) as err:
            CircuitSpec.from_path("/definitely/missing.qasm").resolve()
        assert err.value.code == "circuit_load_failed"
        assert err.value.error_type == "FileNotFoundError"

    def test_bad_library_params_are_typed(self):
        with pytest.raises(CircuitLoadError):
            CircuitSpec.from_library("qft", bogus_kwarg=1).resolve()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(UnknownFieldError):
            CircuitSpec.from_dict({"qasm": "x", "bogus": 1})

    def test_circuit_backed_spec_serialises_as_qasm(self):
        spec = CircuitSpec.from_circuit(qft(2))
        wire = spec.to_dict()
        assert set(wire) == {"qasm"}
        assert qasm.loads(wire["qasm"]).num_qubits == 2

    def test_specs_are_hashable_and_equal_by_content(self):
        a = CircuitSpec.from_library("qft", num_qubits=3)
        b = CircuitSpec.from_library("qft", num_qubits=3)
        assert a == b
        assert hash(a) == hash(b)


class TestNoiseSpec:
    def test_unknown_channel_lists_choices(self):
        with pytest.raises(NoiseSpecError, match="depolarizing"):
            NoiseSpec(channel="nonsense")

    def test_noises_and_every_gate_conflict(self):
        with pytest.raises(NoiseSpecError):
            NoiseSpec(noises=2, every_gate=True)

    def test_apply_matches_insert_random_noise(self):
        from repro import insert_random_noise

        ideal = qft(3)
        spec = NoiseSpec(noises=2, seed=7)
        direct = insert_random_noise(ideal, 2, seed=7)
        applied = spec.apply(ideal)
        assert applied.num_noise_sites == direct.num_noise_sites == 2

    def test_apply_every_gate(self):
        noisy = NoiseSpec(every_gate=True).apply(qft(2))
        assert noisy.num_noise_sites > 0

    def test_placement_required(self):
        """Regression: a channel with nowhere to go must be rejected,
        not silently no-op into an EQUIVALENT verdict."""
        with pytest.raises(NoiseSpecError, match="placement"):
            NoiseSpec()
        with pytest.raises(NoiseSpecError, match="placement"):
            NoiseSpec.from_dict({"channel": "depolarizing", "p": 0.9})


class TestCheckRequest:
    def request(self, **kwargs):
        defaults = dict(
            ideal=CircuitSpec.from_library("qft", num_qubits=2),
            noise=NoiseSpec(noises=1, seed=0),
            epsilon=0.05,
        )
        defaults.update(kwargs)
        return CheckRequest(**defaults)

    def test_parse_serialise_identity(self):
        request = self.request(config={"backend": "einsum"})
        wire = request.to_dict()
        parsed = CheckRequest.from_dict(json.loads(json.dumps(wire)))
        assert parsed == request
        assert parsed.to_dict() == wire

    def test_bad_schema_version_rejected(self):
        wire = self.request().to_dict()
        wire["schema_version"] = "99"
        with pytest.raises(SchemaVersionError) as err:
            CheckRequest.from_dict(wire)
        assert err.value.code == "unsupported_schema_version"

    def test_absent_schema_version_defaults_to_current(self):
        wire = self.request().to_dict()
        del wire["schema_version"]
        assert CheckRequest.from_dict(wire) == self.request()

    def test_unknown_top_level_field_rejected(self):
        wire = self.request().to_dict()
        wire["epsilonn"] = 0.1
        with pytest.raises(UnknownFieldError) as err:
            CheckRequest.from_dict(wire)
        assert err.value.code == "unknown_field"
        assert "epsilonn" in str(err.value)
        assert err.value.details["unknown"] == ["epsilonn"]

    def test_missing_ideal_rejected(self):
        with pytest.raises(InvalidRequestError):
            CheckRequest.from_dict({"epsilon": 0.1})

    def test_epsilon_validated_at_construction(self):
        with pytest.raises(InvalidRequestError):
            self.request(epsilon=1.5)

    def test_non_numeric_epsilon_is_typed_not_a_bare_valueerror(self):
        """Regression: float('oops') must not escape the taxonomy."""
        for bad in ("oops", [0.1], True):
            with pytest.raises(InvalidRequestError):
                CheckRequest.from_dict({
                    "ideal": {"library": "qft"}, "epsilon": bad,
                })
        # an explicit null means "use the default", not an error
        parsed = CheckRequest.from_dict(
            {"ideal": {"library": "qft"}, "epsilon": None}
        )
        assert parsed.epsilon == 0.01

    def test_non_string_mode_is_typed(self):
        with pytest.raises(InvalidRequestError):
            CheckRequest.from_dict({"ideal": {"library": "qft"}, "mode": 5})

    def test_unhashable_config_values_are_typed(self):
        """Regression: a JSON list override must not become a memo-dict
        TypeError deep inside the engine."""
        with pytest.raises(InvalidRequestError, match="hashable"):
            self.request(config={"max_intermediate_size": [64]})
        with pytest.raises(InvalidRequestError, match="hashable"):
            CheckRequest.from_dict({
                "ideal": {"library": "qft"},
                "config": {"max_intermediate_size": [64]},
            })

    def test_unhashable_library_params_are_typed(self):
        with pytest.raises(CircuitSpecError, match="hashable"):
            CircuitSpec.from_dict({"library": "qft", "params": {"n": [1]}})

    def test_mode_validated(self):
        with pytest.raises(InvalidRequestError, match="fidelity"):
            self.request(mode="bogus")

    def test_engine_owned_config_keys_rejected(self):
        # cache_url/workers: a wire request must never be able to point
        # computation or cache traffic at an attacker's host
        for key in ("epsilon", "cache", "cache_dir", "cache_url", "workers"):
            with pytest.raises(InvalidRequestError, match="Engine-owned|top-level"):
                self.request(config={key: 1})

    def test_unknown_config_override_lists_valid_fields(self):
        with pytest.raises(InvalidRequestError) as err:
            self.request(config={"bogus_knob": 1})
        for name in ("backend", "algorithm", "planner"):
            assert name in str(err.value)

    def test_config_override_fields_track_check_config(self):
        import dataclasses

        names = {f.name for f in dataclasses.fields(CheckConfig)}
        assert set(CONFIG_OVERRIDE_FIELDS) == names - {
            "epsilon", "cache", "cache_dir", "cache_url", "workers"
        }

    def test_resolve_config_applies_overrides(self):
        config = self.request(
            config={"backend": "einsum", "planner": "greedy"}
        ).resolve_config()
        assert config.backend == "einsum"
        assert config.planner == "greedy"
        assert config.epsilon == 0.05

    def test_resolve_config_bad_value_is_typed(self):
        request = self.request(config={"backend": "warp-drive"})
        with pytest.raises(ConfigError) as err:
            request.resolve_config()
        # the message carries the valid choices (satellite requirement)
        assert "tdd" in str(err.value)

    def test_base_merge_row_wins(self):
        base = self.request(config={"backend": "einsum"})
        row = {"epsilon": 0.2, "config": {"backend": "dense"}}
        merged = CheckRequest.from_dict(row, base=base)
        assert merged.epsilon == 0.2
        assert dict(merged.config)["backend"] == "dense"
        assert merged.ideal == base.ideal
        assert merged.noise == base.noise

    def test_base_merge_explicit_null_clears_noise(self):
        base = self.request()
        merged = CheckRequest.from_dict({"noise": None}, base=base)
        assert merged.noise is None

    def test_null_scalars_inherit_base_not_schema_default(self):
        """Regression: `"epsilon": null` must not silently reset an
        operator's CLI flag to 0.01."""
        base = self.request(epsilon=0.2, mode="fidelity")
        merged = CheckRequest.from_dict(
            {"epsilon": None, "mode": None}, base=base
        )
        assert merged.epsilon == 0.2
        assert merged.mode == "fidelity"

    def test_random_library_specs_require_a_seed(self):
        """Regression: a seedless random generator would resolve to a
        different circuit per process, breaking fingerprints."""
        for name in ("quantum_volume", "randomized_benchmarking"):
            with pytest.raises(CircuitSpecError, match="seed"):
                CircuitSpec.from_library(name, num_qubits=2)
        spec = CircuitSpec.from_library("quantum_volume", num_qubits=2,
                                        seed=5)
        assert spec.resolve().num_qubits == 2

    def test_noise_p_type_validated(self):
        with pytest.raises(NoiseSpecError, match="number"):
            NoiseSpec(p="0.9")

    def test_noise_placement_types_validated(self):
        """Regression: bool('false') is True — string booleans and
        string seeds must be rejected, not silently coerced."""
        with pytest.raises(NoiseSpecError, match="boolean"):
            NoiseSpec(every_gate="false")
        with pytest.raises(NoiseSpecError, match="integer"):
            NoiseSpec(seed="7")
        with pytest.raises(NoiseSpecError, match="integer"):
            NoiseSpec(noises=True)

    def test_resolve_circuits_failures_are_typed(self):
        request = CheckRequest(
            ideal=CircuitSpec.from_path("/definitely/missing.qasm")
        )
        with pytest.raises(CircuitLoadError):
            request.resolve_circuits()

    def test_resolve_circuits_applies_noise(self):
        ideal, noisy = self.request().resolve_circuits()
        assert ideal.num_noise_sites == 0
        assert noisy.num_noise_sites == 1

    def test_requests_hash_and_compare_by_content(self):
        assert self.request() == self.request()
        assert hash(self.request()) == hash(self.request())

    def test_from_json_rejects_garbage(self):
        with pytest.raises(InvalidRequestError):
            CheckRequest.from_json("{not json")
