"""Unit tests for the Engine facade."""

import pytest

from repro import (
    CheckConfig,
    CheckRequest,
    CheckSession,
    CircuitSpec,
    Engine,
    NoiseSpec,
    Verdict,
    qft,
)
from repro.api import ConfigError, JobNotFoundError, ReproError
from repro.backends import NumpyEinsumBackend
from repro.cache.fingerprint import request_fingerprint
from repro.circuits import qasm


def library_request(num_qubits=3, seed=0, **kwargs):
    defaults = dict(
        ideal=CircuitSpec.from_library("qft", num_qubits=num_qubits),
        noise=NoiseSpec(noises=2, seed=seed),
        epsilon=0.05,
    )
    defaults.update(kwargs)
    return CheckRequest(**defaults)


class TestCheck:
    def test_check_agrees_with_bare_session(self):
        engine = Engine()
        response = engine.check(library_request())
        ideal = qft(3)
        noisy = NoiseSpec(noises=2, seed=0).apply(ideal)
        direct = CheckSession(CheckConfig(epsilon=0.05)).check(ideal, noisy)
        assert response.ok
        assert response.equivalent == direct.equivalent
        assert abs(response.fidelity - direct.fidelity) < 1e-12

    def test_request_config_overrides_base(self):
        engine = Engine(CheckConfig(backend="tdd"))
        response = engine.check(
            library_request(config={"backend": "einsum"})
        )
        assert response.result.backend == "einsum"

    def test_typed_errors_raise_from_check(self):
        with pytest.raises(ReproError) as err:
            Engine().check(
                CheckRequest(ideal=CircuitSpec.from_path("/missing.qasm"))
            )
        assert err.value.code == "circuit_load_failed"

    def test_fidelity_mode(self):
        engine = Engine()
        request = library_request(mode="fidelity")
        response = engine.check(request)
        assert response.ok
        assert 0.9 < response.fidelity <= 1.0
        assert engine.fidelity(library_request()) == response.fidelity

    def test_fidelity_mode_keeps_the_lower_bound_note(self):
        """A capped alg1 fidelity run that cannot prove a negative
        carries the same guidance note as check mode."""
        response = Engine().check(CheckRequest(
            ideal=CircuitSpec.from_library("qft", num_qubits=3),
            noise=NoiseSpec(noises=2, p=0.5, seed=0),  # heavy noise
            mode="fidelity",
            epsilon=0.4,
            config={"algorithm": "alg1", "alg1_max_terms": 1},
        ))
        assert response.ok
        assert not response.equivalent
        assert response.result.is_lower_bound
        assert "lower bound" in response.result.note

    def test_sessions_are_shared_per_config(self):
        engine = Engine()
        engine.check(library_request(seed=0))
        engine.check(library_request(seed=1))
        assert len(engine._sessions) == 1
        engine.check(library_request(config={"backend": "einsum"}))
        assert len(engine._sessions) == 2

    def test_session_memo_is_bounded(self):
        """A service sweeping epsilons must not retain warm backend
        state per distinct config forever."""
        from repro.api.engine import _SESSION_MEMO_ENTRIES

        engine = Engine()
        request = library_request(num_qubits=2)
        for i in range(_SESSION_MEMO_ENTRIES + 8):
            engine.check(library_request(
                num_qubits=2, epsilon=0.05 + i * 0.001
            ))
        assert len(engine._resolved) <= _SESSION_MEMO_ENTRIES
        assert len(engine._sessions) <= _SESSION_MEMO_ENTRIES
        assert engine.check(request).ok  # still serving

    def test_circuit_memo_reuses_pure_specs(self):
        engine = Engine()
        spec = CircuitSpec.from_library("qft", num_qubits=3)
        first = engine._circuit(spec)
        again = engine._circuit(CircuitSpec.from_library("qft", num_qubits=3))
        assert first is again

    def test_live_circuit_specs_skip_serialisation(self):
        ideal = qft(2)
        noisy = NoiseSpec(noises=1, seed=0).apply(ideal)
        response = Engine().check(
            CheckRequest(
                ideal=CircuitSpec.from_circuit(ideal),
                noisy=CircuitSpec.from_circuit(noisy),
                epsilon=0.05,
            )
        )
        assert response.ok


class TestCheckIter:
    def test_serial_is_streaming_and_ordered(self):
        engine = Engine()
        requests = [library_request(seed=s) for s in range(3)]
        iterator = engine.check_iter(iter(requests))
        responses = list(iterator)
        assert [r.index for r in responses] == [0, 1, 2]
        assert all(r.ok for r in responses)

    def test_error_isolation_keeps_positions(self):
        engine = Engine()
        bad = CheckRequest(ideal=CircuitSpec.from_path("/missing.qasm"))
        out = list(engine.check_iter([library_request(), bad,
                                      library_request(seed=1)]))
        assert [r.verdict for r in out] == [
            Verdict.EQUIVALENT, Verdict.ERROR, Verdict.EQUIVALENT,
        ]
        assert out[1].error_code == "circuit_load_failed"
        assert out[1].index == 1

    def test_parallel_matches_serial(self):
        requests = [library_request(seed=s, num_qubits=2) for s in range(4)]
        serial = [r.fidelity for r in Engine().check_iter(requests)]
        with Engine(jobs=2) as engine:
            parallel = list(engine.check_iter(requests))
            # the pool is shared across calls
            again = list(engine.check_iter(requests[:2]))
        assert [r.fidelity for r in parallel] == serial
        assert [r.index for r in parallel] == [0, 1, 2, 3]
        assert [r.fidelity for r in again] == serial[:2]

    def test_parallel_isolates_bad_rows(self):
        bad = CheckRequest(ideal=CircuitSpec.from_path("/missing.qasm"))
        with Engine(jobs=2) as engine:
            out = list(engine.check_iter(
                [library_request(num_qubits=2), bad]
            ))
        assert [r.verdict for r in out] == [Verdict.EQUIVALENT, Verdict.ERROR]

    def test_parallel_rejects_instance_backends(self):
        request = library_request(num_qubits=2)
        request = CheckRequest(
            ideal=request.ideal, noise=request.noise, epsilon=0.05,
        )
        with Engine(CheckConfig(backend=NumpyEinsumBackend()), jobs=2) as engine:
            out = list(engine.check_iter([request]))
        assert out[0].verdict == Verdict.ERROR
        assert out[0].error_code == "invalid_config"
        assert "tdd" in str(out[0].error)  # names the registry choices


class TestJobs:
    def test_submit_and_result(self):
        engine = Engine()
        handle = engine.submit(library_request())
        assert engine.pending_jobs() == (handle.id,)
        response = engine.result(handle)
        assert response.ok

    def test_each_job_collected_once(self):
        engine = Engine()
        handle = engine.submit(library_request())
        engine.result(handle)
        with pytest.raises(JobNotFoundError):
            engine.result(handle)
        with pytest.raises(JobNotFoundError):
            engine.result("job-999")

    def test_submit_captures_resolution_errors(self):
        engine = Engine()
        handle = engine.submit(
            CheckRequest(ideal=CircuitSpec.from_path("/missing.qasm"))
        )
        response = engine.result(handle)
        assert response.verdict == Verdict.ERROR
        assert response.error_code == "circuit_load_failed"

    def test_pool_backed_jobs(self):
        with Engine(jobs=2) as engine:
            handles = [
                engine.submit(library_request(seed=s, num_qubits=2))
                for s in range(2)
            ]
            results = [engine.result(h) for h in handles]
        assert all(r.ok for r in results)

    def test_result_accepts_raw_ids(self):
        engine = Engine()
        handle = engine.submit(library_request())
        assert engine.result(handle.id).ok

    def test_timed_out_jobs_stay_collectable(self):
        """Regression: py3.10's concurrent.futures.TimeoutError is not
        the builtin; a timeout must re-shelve the job either way."""
        import concurrent.futures

        class StuckFuture:
            def result(self, timeout=None):
                raise concurrent.futures.TimeoutError()

        engine = Engine()
        handle = engine.submit(library_request())
        engine._jobs_pending[handle.id] = (
            handle.request, ("future", StuckFuture()), 0.0
        )
        with pytest.raises(concurrent.futures.TimeoutError):
            engine.result(handle, timeout=0.01)
        assert handle.id in engine.pending_jobs()


class TestJobLifecycle:
    def test_ttl_evicts_abandoned_jobs(self):
        engine = Engine(job_ttl_seconds=0.01)
        stale = engine.submit(library_request(seed=0))
        import time as _time

        _time.sleep(0.05)
        fresh = engine.submit(library_request(seed=1))  # sweeps on submit
        assert stale.id not in engine.pending_jobs()
        assert fresh.id in engine.pending_jobs()
        with pytest.raises(JobNotFoundError):
            engine.result(stale)
        assert engine.result(fresh).ok

    def test_max_pending_bounds_the_job_table(self):
        engine = Engine(max_pending_jobs=3)
        handles = [
            engine.submit(library_request(seed=s)) for s in range(5)
        ]
        pending = engine.pending_jobs()
        assert len(pending) == 3
        # oldest evicted first, newest retained
        assert handles[0].id not in pending
        assert handles[4].id in pending
        with pytest.raises(JobNotFoundError):
            engine.result(handles[0])
        assert engine.result(handles[4]).ok

    def test_job_state_lifecycle(self):
        engine = Engine()
        handle = engine.submit(library_request())
        assert engine.job_state(handle) == "deferred"
        failed = engine.submit(
            CheckRequest(ideal=CircuitSpec.from_path("/missing.qasm"))
        )
        assert engine.job_state(failed) == "failed"
        engine.result(handle)
        assert engine.job_state(handle) == "unknown"
        assert engine.job_state("job-424242") == "unknown"

    def test_validation(self):
        with pytest.raises(ValueError):
            Engine(max_pending_jobs=0)
        with pytest.raises(ValueError):
            Engine(job_ttl_seconds=0)

    def test_close_is_idempotent_and_recoverable(self):
        engine = Engine()
        engine.submit(library_request())
        engine.close()
        engine.close()  # second close is a no-op
        assert engine.pending_jobs() == ()
        # the engine stays fully usable after close
        assert engine.check(library_request()).ok

    def test_reset_is_idempotent(self):
        engine = Engine()
        engine.reset()  # never-used engine
        engine.check(library_request())
        engine.reset()
        engine.reset()
        assert engine._sessions == {}
        assert engine.check(library_request()).ok


class TestThreadSafety:
    def test_concurrent_identical_requests_share_one_session(self, tmp_path):
        """Threaded hammer: same request from many threads must create
        one session and hit the result cache for every repeat."""
        import threading

        engine = Engine(cache=True, cache_dir=str(tmp_path / "cache"))
        workers = 8
        barrier = threading.Barrier(workers)
        responses = [None] * workers

        def hammer(slot):
            barrier.wait()
            responses[slot] = engine.respond(library_request())

        threads = [
            threading.Thread(target=hammer, args=(slot,))
            for slot in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(r.ok for r in responses)
        fidelities = {r.fidelity for r in responses}
        assert len(fidelities) == 1
        assert len(engine._sessions) == 1
        # exactly one cold compute; every other request was a lookup
        hits = sum(r.stats.result_cache_hit for r in responses)
        assert hits == workers - 1

    def test_concurrent_mixed_configs_stay_isolated(self, tmp_path):
        import threading

        engine = Engine(cache=True, cache_dir=str(tmp_path / "cache"))
        configs = [None, {"backend": "einsum"}]
        results = []
        lock = threading.Lock()

        def hammer(overrides):
            request = library_request(num_qubits=2, **(
                {"config": overrides} if overrides else {}
            ))
            response = engine.respond(request)
            with lock:
                results.append(response)

        threads = [
            threading.Thread(target=hammer, args=(configs[i % 2],))
            for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(r.ok for r in results)
        fidelities = [r.fidelity for r in results]
        assert max(fidelities) - min(fidelities) < 1e-9  # same answer
        assert len(engine._sessions) == 2


class TestCacheSharing:
    def test_one_cache_across_sessions_and_requests(self, tmp_path):
        engine = Engine(cache=True, cache_dir=str(tmp_path / "cache"))
        cold = engine.check(library_request())
        warm = engine.check(library_request())
        assert cold.stats.result_cache_hit == 0
        assert warm.stats.result_cache_hit == 1
        assert warm.fidelity == cold.fidelity
        # different config -> different session, same cache object
        engine.check(library_request(config={"backend": "einsum"}))
        sessions = list(engine._sessions.values())
        assert len(sessions) == 2
        assert sessions[0].cache is sessions[1].cache is engine.cache

    def test_workers_share_the_disk_tier(self, tmp_path):
        requests = [library_request(seed=s, num_qubits=2) for s in range(2)]
        with Engine(jobs=2, cache=True,
                    cache_dir=str(tmp_path / "cache")) as engine:
            list(engine.check_iter(requests))
            warm = list(engine.check_iter(requests))
        assert [r.stats.result_cache_hit for r in warm] == [1, 1]

    def test_fingerprint_is_the_result_cache_key(self, tmp_path):
        engine = Engine(cache=True, cache_dir=str(tmp_path / "cache"))
        request = library_request()
        fingerprint = engine.fingerprint(request)
        config, ideal, noisy = engine._resolve(request)
        assert fingerprint == request_fingerprint(ideal, noisy, config)
        assert fingerprint == engine.cache.results.key_for(
            ideal, noisy, config
        )
        # equal queries fingerprint equal; different epsilon does not
        assert engine.fingerprint(library_request()) == fingerprint
        assert engine.fingerprint(
            library_request(epsilon=0.2)
        ) != fingerprint
        # a fidelity-mode query is a different query (no early
        # termination) and must never alias the check-mode key
        assert engine.fingerprint(
            library_request(mode="fidelity")
        ) != fingerprint

    def test_cache_knobs_inherit_from_base_config(self, tmp_path):
        engine = Engine(
            CheckConfig(cache=True, cache_dir=str(tmp_path / "cache"))
        )
        assert engine.cache is not None
        # sessions never open private caches
        assert engine.config.cache is False


class TestValidation:
    def test_jobs_validated(self):
        with pytest.raises(ValueError):
            Engine(jobs=0)

    def test_bad_override_is_config_error_listing_choices(self):
        with pytest.raises(ConfigError) as err:
            Engine().check(library_request(config={"planner": "psychic"}))
        assert "greedy" in str(err.value)

    def test_qasm_loading(self, tmp_path):
        path = tmp_path / "c.qasm"
        qasm.dump(qft(2), path)
        response = Engine().check(
            CheckRequest(
                ideal=CircuitSpec.from_path(path),
                noise=NoiseSpec(noises=1, seed=0),
                epsilon=0.05,
            )
        )
        assert response.ok
