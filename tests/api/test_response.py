"""Unit tests for the wire-schema response types and error taxonomy."""

import json
import pickle

import pytest

from repro import SCHEMA_VERSION, CheckResponse, Verdict
from repro.api import (
    ERROR_CODES,
    CheckFailedError,
    CircuitLoadError,
    ReproError,
    SchemaVersionError,
    error_from_code,
)
from repro.core import CheckError, CheckResult, RunStats


def sample_result(equivalent=True):
    return CheckResult(
        equivalent=equivalent,
        epsilon=0.05,
        fidelity=0.999 if equivalent else 0.5,
        is_lower_bound=False,
        stats=RunStats(algorithm="alg2", backend="tdd", max_nodes=7),
        algorithm="alg2",
        backend="tdd",
    )


class TestErrorTaxonomy:
    def test_every_code_maps_back_to_its_class(self):
        for code, cls in ERROR_CODES.items():
            assert error_from_code(code, "msg").code == code
            assert isinstance(error_from_code(code, "msg"), cls)

    def test_unknown_code_degrades_to_base(self):
        error = error_from_code("from_the_future", "msg")
        assert type(error) is ReproError
        assert error.code == "from_the_future"

    def test_wrap_keeps_repro_errors_and_adopts_others(self):
        typed = CircuitLoadError("gone")
        assert CheckFailedError.wrap(typed) is typed
        adopted = CheckFailedError.wrap(ValueError("boom"), index=2)
        assert adopted.code == "check_failed"
        assert adopted.error_type == "ValueError"
        assert adopted.index == 2

    def test_structural_equality(self):
        a = CircuitLoadError("gone", error_type="OSError", index=1)
        b = CircuitLoadError("gone", error_type="OSError", index=1)
        assert a == b and hash(a) == hash(b)
        assert a != CircuitLoadError("gone", error_type="OSError", index=2)

    def test_to_dict_is_wire_schema(self):
        record = CircuitLoadError("gone").to_dict()
        assert record["schema_version"] == SCHEMA_VERSION
        assert record["verdict"] == "ERROR"
        assert record["error_code"] == "circuit_load_failed"


class TestCheckResponse:
    def test_exactly_one_of_result_or_error(self):
        with pytest.raises(ValueError):
            CheckResponse(verdict=Verdict.EQUIVALENT)
        with pytest.raises(ValueError):
            CheckResponse(
                verdict=Verdict.ERROR,
                result=sample_result(),
                error=ReproError("x"),
            )

    def test_success_wire_matches_check_result(self):
        result = sample_result()
        response = CheckResponse.from_result(result)
        assert response.ok
        assert response.verdict == Verdict.EQUIVALENT
        assert response.to_dict() == result.to_dict()
        assert response.to_dict()["schema_version"] == SCHEMA_VERSION

    def test_not_equivalent_verdict(self):
        response = CheckResponse.from_result(sample_result(False))
        assert response.verdict == Verdict.NOT_EQUIVALENT
        assert not response.equivalent

    def test_success_roundtrip_identity(self):
        response = CheckResponse.from_result(sample_result())
        parsed = CheckResponse.from_json(response.to_json())
        assert parsed == response
        assert parsed.to_dict() == response.to_dict()

    def test_indexed_responses_roundtrip(self):
        """Regression: stream responses (index set) must survive the
        wire — success and error alike."""
        for response in (
            CheckResponse.from_result(sample_result(), index=3),
            CheckResponse.from_error(ReproError("boom"), index=4),
        ):
            parsed = CheckResponse.from_json(response.to_json())
            assert parsed == response
            assert parsed.index == response.index
        # standalone success records still omit the field
        assert "index" not in CheckResponse.from_result(
            sample_result()
        ).to_dict()

    def test_error_roundtrip_identity(self):
        error = CircuitLoadError(
            "gone", error_type="FileNotFoundError", index=4
        )
        response = CheckResponse.from_error(error)
        parsed = CheckResponse.from_dict(json.loads(response.to_json()))
        assert parsed == response
        assert parsed.error_code == "circuit_load_failed"
        assert parsed.error.error_type == "FileNotFoundError"
        assert parsed.index == 4

    def test_bad_schema_version_rejected(self):
        record = CheckResponse.from_result(sample_result()).to_dict()
        record["schema_version"] = "0"
        with pytest.raises(SchemaVersionError):
            CheckResponse.from_dict(record)

    def test_missing_required_fields_are_typed(self):
        """Regression: a truncated peer record must raise ReproError,
        not a bare KeyError."""
        with pytest.raises(ReproError, match="epsilon"):
            CheckResponse.from_dict(
                {"schema_version": "1", "equivalent": True}
            )

    def test_raise_for_error(self):
        ok = CheckResponse.from_result(sample_result())
        assert ok.raise_for_error() is ok
        with pytest.raises(CircuitLoadError):
            CheckResponse.from_error(CircuitLoadError("gone")).raise_for_error()

    def test_adopts_batch_check_error_records(self):
        record = CheckError(
            error="boom", error_type="ValueError", index=5
        )
        response = CheckResponse.from_check_error(record)
        assert response.verdict == Verdict.ERROR
        assert response.error_code == "check_failed"
        assert response.error.error_type == "ValueError"
        assert response.index == 5

    def test_check_error_wire_carries_schema_and_code(self):
        record = CheckError(error="boom").to_dict()
        assert record["schema_version"] == SCHEMA_VERSION
        assert record["error_code"] == "check_failed"

    def test_responses_pickle(self):
        for response in (
            CheckResponse.from_result(sample_result(), index=1),
            CheckResponse.from_error(CircuitLoadError("gone"), index=2),
        ):
            clone = pickle.loads(pickle.dumps(response))
            assert clone == response
