"""Property-based tests for the contraction-planner layer.

Random *closed* tensor networks (every index label used exactly twice,
self-loops allowed, mixed dimensions) drive three invariants:

* every planner produces plans that eliminate each index exactly once
  (slice labels counted as handled);
* ``slice_plan`` always brings ``peak_size()`` under the requested bound;
* executing any plan — any planner, sliced or not, on the dense and
  einsum backends — agrees with direct dense contraction to 1e-9.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import DenseBackend, NumpyEinsumBackend
from repro.tensornet import (
    Tensor,
    TensorNetwork,
    build_plan,
    greedy_plan,
    plan_from_order,
    slice_plan,
)


@st.composite
def closed_networks(draw):
    """A random closed network: each label lands on exactly two slots."""
    num_tensors = draw(st.integers(min_value=2, max_value=5))
    num_edges = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    slots = [[] for _ in range(num_tensors)]
    dims = {}
    for e in range(num_edges):
        label = f"e{e}"
        dims[label] = int(rng.integers(2, 4))
        a, b = rng.integers(0, num_tensors, size=2)  # a == b -> self-loop
        slots[int(a)].append(label)
        slots[int(b)].append(label)
    tensors = []
    for labels in slots:
        shape = tuple(dims[lab] for lab in labels)
        data = rng.uniform(-1, 1, size=shape) + 1j * rng.uniform(
            -1, 1, size=shape
        )
        tensors.append(Tensor(data, labels))
    return TensorNetwork(tensors)


def all_pairwise_labels(network):
    """Labels that survive self-tracing (the ones plans must eliminate)."""
    labels = set()
    for tensor in network.tensors:
        counts = {}
        for lab in tensor.indices:
            counts[lab] = counts.get(lab, 0) + 1
        labels.update(lab for lab, c in counts.items() if c == 1)
    return labels


PLAN_BUILDERS = [
    lambda net: plan_from_order(net, method="sequential"),
    lambda net: plan_from_order(net, method="min_fill"),
    lambda net: plan_from_order(net, method="tree_decomposition"),
    greedy_plan,
]


class TestPlanInvariants:
    @settings(max_examples=40, deadline=None)
    @given(closed_networks())
    def test_each_index_eliminated_exactly_once(self, network):
        for build in PLAN_BUILDERS:
            plan = build(network)
            plan.validate()  # raises on double/missed elimination
            eliminated = [
                lab for step in plan.steps for lab in step.eliminated
            ]
            assert len(eliminated) == len(set(eliminated))
            assert set(eliminated) | set(plan.slices) == all_pairwise_labels(
                network
            )

    @settings(max_examples=40, deadline=None)
    @given(closed_networks(), st.sampled_from([1, 2, 4, 16]))
    def test_sliced_plans_respect_the_bound(self, network, bound):
        for build in PLAN_BUILDERS:
            sliced = slice_plan(build(network), bound)
            sliced.validate()
            assert sliced.peak_size() <= bound
            assert sliced.num_slices() >= 1

    @settings(max_examples=25, deadline=None)
    @given(closed_networks())
    def test_plan_execution_matches_direct_dense_contraction(self, network):
        reference = network.contract_scalar()
        for build in PLAN_BUILDERS:
            plan = build(network)
            for executor in (DenseBackend(), NumpyEinsumBackend()):
                value = executor.contract_scalar(network, plan=plan)
                assert np.isclose(value, reference, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(closed_networks(), st.sampled_from([1, 4, 16]))
    def test_sliced_execution_matches_direct_dense_contraction(
        self, network, bound
    ):
        reference = network.contract_scalar()
        plan = slice_plan(greedy_plan(network), bound)
        for executor in (DenseBackend(), NumpyEinsumBackend()):
            value = executor.contract_scalar(network, plan=plan)
            assert np.isclose(value, reference, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(closed_networks())
    def test_backend_planning_matches_direct_dense_contraction(self, network):
        """The backends' own plan_for path (no explicit plan) agrees too."""
        reference = network.contract_scalar()
        for backend in (
            DenseBackend(planner="greedy", max_intermediate_size=8),
            NumpyEinsumBackend(order_method="min_fill"),
        ):
            value = backend.contract_scalar(network)
            assert np.isclose(value, reference, atol=1e-9)
