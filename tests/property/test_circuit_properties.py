"""Property-based tests on circuits and trace networks."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, cancel_adjacent_gates
from repro.tdd import contract_network_scalar
from repro.tensornet import circuit_to_network, circuit_trace, close_trace

GATE_POOL = ["h", "x", "y", "z", "s", "sdg", "t", "tdg"]


@st.composite
def random_circuits(draw, max_qubits=3, max_gates=10):
    n = draw(st.integers(1, max_qubits))
    circuit = QuantumCircuit(n)
    num_gates = draw(st.integers(0, max_gates))
    for _ in range(num_gates):
        if n >= 2 and draw(st.booleans()):
            pair = draw(
                st.permutations(list(range(n))).map(lambda p: p[:2])
            )
            circuit.cx(pair[0], pair[1])
        else:
            name = draw(st.sampled_from(GATE_POOL))
            getattr(circuit, name)(draw(st.integers(0, n - 1)))
    return circuit


class TestTraceNetworks:
    @given(random_circuits())
    @settings(max_examples=50, deadline=None)
    def test_network_trace_matches_dense(self, circuit):
        assert np.isclose(
            circuit_trace(circuit),
            np.trace(circuit.to_matrix()),
            atol=1e-8,
        )

    @given(random_circuits())
    @settings(max_examples=40, deadline=None)
    def test_tdd_trace_matches_dense(self, circuit):
        net = close_trace(circuit_to_network(circuit))
        assert np.isclose(
            contract_network_scalar(net),
            np.trace(circuit.to_matrix()),
            atol=1e-8,
        )


class TestPasses:
    @given(random_circuits())
    @settings(max_examples=50, deadline=None)
    def test_cancellation_preserves_unitary(self, circuit):
        optimised = cancel_adjacent_gates(circuit)
        assert len(optimised) <= len(circuit)
        assert np.allclose(
            optimised.to_matrix(), circuit.to_matrix(), atol=1e-9
        )

    @given(random_circuits())
    @settings(max_examples=30, deadline=None)
    def test_inverse_composes_to_identity(self, circuit):
        miter = circuit.compose(circuit.inverse())
        assert np.allclose(
            miter.to_matrix(), np.eye(2**circuit.num_qubits), atol=1e-8
        )

    @given(random_circuits())
    @settings(max_examples=30, deadline=None)
    def test_full_cancellation_of_miter(self, circuit):
        """U followed by U† cancels to nothing gate-by-gate."""
        miter = circuit.compose(circuit.inverse())
        optimised = cancel_adjacent_gates(miter)
        assert len(optimised) == 0
