"""Property-based tests for the budgeted search planners.

Searched plans are held to exactly the invariants of the heuristic
planners (see ``test_planner_properties``) — validity, single
elimination, backend agreement with direct dense contraction — plus the
search-specific ones: the anytime floor against the heuristic baselines
and bitwise determinism of fixed ``(network, planner, seed, trials)``
inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from test_planner_properties import all_pairwise_labels, closed_networks

from repro.backends import get_backend
from repro.planning import search_plan
from repro.tensornet import greedy_plan, plan_from_order
from repro.tensornet.planner import SEARCH_PLANNERS

TRIALS = 4  # exact deterministic trial count (clock never consulted)


class TestSearchedPlanInvariants:
    @settings(max_examples=20, deadline=None)
    @given(closed_networks(), st.integers(min_value=0, max_value=5))
    def test_each_index_eliminated_exactly_once(self, network, seed):
        for planner in SEARCH_PLANNERS:
            plan = search_plan(network, planner, trials=TRIALS, seed=seed)
            plan.validate()
            eliminated = [
                lab for step in plan.steps for lab in step.eliminated
            ]
            assert len(eliminated) == len(set(eliminated))
            assert set(eliminated) | set(plan.slices) == \
                all_pairwise_labels(network)

    @settings(max_examples=20, deadline=None)
    @given(closed_networks())
    def test_search_never_loses_to_the_heuristic_floor(self, network):
        floor = min(
            greedy_plan(network).total_cost(),
            plan_from_order(network, method="min_fill").total_cost(),
        )
        for planner in SEARCH_PLANNERS:
            plan = search_plan(network, planner, trials=TRIALS)
            assert plan.total_cost() <= floor

    @settings(max_examples=15, deadline=None)
    @given(closed_networks())
    def test_execution_agrees_with_direct_dense_contraction(self, network):
        backends = ["dense", "einsum"]
        if all(
            dim == 2
            for tensor in network.tensors
            for dim in tensor.data.shape
        ):
            backends.append("tdd")  # TDDs only take dimension-2 indices
        reference = network.contract_scalar()
        for planner in SEARCH_PLANNERS:
            plan = search_plan(network, planner, trials=TRIALS, seed=1)
            for backend in backends:
                value = get_backend(backend).contract_scalar(
                    network, plan=plan
                )
                assert np.isclose(value, reference, atol=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(closed_networks(), st.integers(min_value=0, max_value=3))
    def test_identical_inputs_yield_identical_digests(self, network, seed):
        for planner in SEARCH_PLANNERS:
            first = search_plan(network, planner, trials=TRIALS, seed=seed)
            second = search_plan(network, planner, trials=TRIALS, seed=seed)
            assert first.digest() == second.digest()
            assert first.order == second.order
            assert first.steps == second.steps

    @settings(max_examples=15, deadline=None)
    @given(closed_networks(), st.sampled_from([1, 4, 16]))
    def test_sliced_searched_plans_respect_the_bound(self, network, bound):
        for planner in SEARCH_PLANNERS:
            plan = search_plan(
                network, planner, trials=TRIALS,
                max_intermediate_size=bound,
            )
            plan.validate()
            assert plan.peak_size() <= bound
            assert plan.search_report is not None
