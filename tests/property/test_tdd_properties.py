"""Property-based tests for the TDD data structure.

These exercise the canonical-form and algebra invariants on random dense
tensors: TDD conversion must be a lossless, canonical encoding, and the
add/contract operations must agree with their dense counterparts.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.tdd import TddManager

LABELS = ["v0", "v1", "v2", "v3"]


def complex_tensors(rank: int):
    shape = (2,) * rank
    finite = st.floats(
        min_value=-4, max_value=4, allow_nan=False, allow_infinity=False,
        width=32,
    )
    return st.tuples(
        arrays(np.float64, shape, elements=finite),
        arrays(np.float64, shape, elements=finite),
    ).map(lambda pair: pair[0] + 1j * pair[1])


@st.composite
def tensor_with_labels(draw, max_rank=3):
    rank = draw(st.integers(min_value=0, max_value=max_rank))
    labels = draw(
        st.permutations(LABELS).map(lambda p: list(p)[:rank])
    )
    data = draw(complex_tensors(rank))
    return data, labels


class TestRoundTrip:
    @given(tensor_with_labels())
    @settings(max_examples=80, deadline=None)
    def test_from_to_array(self, case):
        data, labels = case
        manager = TddManager(LABELS)
        tdd = manager.from_array(data, labels)
        assert np.allclose(tdd.to_array(labels), data, atol=1e-9)

    @given(tensor_with_labels())
    @settings(max_examples=60, deadline=None)
    def test_canonicity(self, case):
        """Two structurally different constructions of the same tensor
        must produce the identical node."""
        data, labels = case
        manager = TddManager(LABELS)
        a = manager.from_array(data, labels)
        # Rebuild with axes permuted (and matching label permutation).
        if labels:
            perm = list(reversed(range(len(labels))))
            data2 = np.transpose(data, perm)
            labels2 = [labels[i] for i in perm]
        else:
            data2, labels2 = data, labels
        b = manager.from_array(data2, labels2)
        assert a.node is b.node
        assert abs(a.weight - b.weight) < 1e-9


class TestAlgebra:
    @given(tensor_with_labels(), tensor_with_labels())
    @settings(max_examples=60, deadline=None)
    def test_add_matches_dense(self, case_a, case_b):
        data_a, labels_a = case_a
        data_b, labels_b = case_b
        manager = TddManager(LABELS)
        ta = manager.from_array(data_a, labels_a)
        tb = manager.from_array(data_b, labels_b)
        total = ta.add(tb)
        out_labels = LABELS  # broadcast everything for comparison
        dense_a = ta.to_array(out_labels)
        dense_b = tb.to_array(out_labels)
        assert np.allclose(
            total.to_array(out_labels), dense_a + dense_b, atol=1e-8
        )

    @given(tensor_with_labels(), tensor_with_labels(),
           st.sets(st.sampled_from(LABELS), max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_contract_matches_dense(self, case_a, case_b, sum_set):
        data_a, labels_a = case_a
        data_b, labels_b = case_b
        manager = TddManager(LABELS)
        ta = manager.from_array(data_a, labels_a)
        tb = manager.from_array(data_b, labels_b)
        sum_labels = sorted(sum_set)
        result = manager.contract(
            (ta.weight, ta.node), (tb.weight, tb.node),
            [manager.var_position[lab] for lab in sum_labels],
        )
        from repro.tdd import Tdd

        out = Tdd(manager, result[0], result[1])
        keep = [lab for lab in LABELS if lab not in sum_set]
        dense_a = ta.to_array(LABELS)
        dense_b = tb.to_array(LABELS)
        product = dense_a * dense_b
        axes = tuple(LABELS.index(lab) for lab in sum_labels)
        expected = product.sum(axis=axes) if axes else product
        assert np.allclose(out.to_array(keep), expected, atol=1e-8)

    @given(tensor_with_labels())
    @settings(max_examples=40, deadline=None)
    def test_add_self_equals_double(self, case):
        data, labels = case
        manager = TddManager(LABELS)
        tdd = manager.from_array(data, labels)
        doubled = tdd.add(tdd)
        assert np.allclose(
            doubled.to_array(labels), 2 * data, atol=1e-8
        )

    @given(tensor_with_labels())
    @settings(max_examples=40, deadline=None)
    def test_additive_inverse(self, case):
        data, labels = case
        manager = TddManager(LABELS)
        tdd = manager.from_array(data, labels)
        neg = manager.from_array(-data, labels)
        assert tdd.add(neg).scalar() == 0.0
