"""Property-based tests for noise channels and fidelity invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.core import jamiolkowski_fidelity_dense, jamiolkowski_fidelity_kraus
from repro.linalg import (
    is_density_matrix,
    random_density_matrix,
    random_kraus_set,
    random_unitary,
)
from repro.noise import (
    KrausChannel,
    amplitude_damping,
    bit_flip,
    bit_phase_flip,
    depolarizing,
    insert_random_noise,
    phase_damping,
    phase_flip,
)

probabilities = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
channel_factories = st.sampled_from([
    bit_flip, phase_flip, bit_phase_flip, depolarizing,
    amplitude_damping, phase_damping,
])


class TestChannelInvariants:
    @given(channel_factories, probabilities)
    @settings(max_examples=60, deadline=None)
    def test_cptp(self, factory, p):
        assert factory(p).is_cptp()

    @given(channel_factories, probabilities, st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_maps_states_to_states(self, factory, p, seed):
        rho = random_density_matrix(2, rng=np.random.default_rng(seed))
        out = factory(p).apply(rho)
        assert is_density_matrix(out, atol=1e-7)

    @given(channel_factories, probabilities)
    @settings(max_examples=40, deadline=None)
    def test_matrix_rep_consistent(self, factory, p):
        channel = factory(p)
        rho = random_density_matrix(2, rng=np.random.default_rng(7))
        via_rep = (channel.matrix_rep() @ rho.reshape(-1)).reshape(2, 2)
        assert np.allclose(via_rep, channel.apply(rho), atol=1e-9)

    @given(st.integers(1, 4), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_random_kraus_channels_cptp(self, num_ops, seed):
        ops = random_kraus_set(2, num_ops, np.random.default_rng(seed))
        assert KrausChannel(ops).is_cptp()


class TestFidelityInvariants:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_bounds(self, seed):
        rng = np.random.default_rng(seed)
        u = random_unitary(4, rng)
        kraus = random_kraus_set(4, 3, rng)
        f = jamiolkowski_fidelity_kraus(kraus, u)
        assert -1e-9 <= f <= 1 + 1e-9

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_unitary_self_fidelity_one(self, seed):
        u = random_unitary(4, np.random.default_rng(seed))
        assert np.isclose(jamiolkowski_fidelity_kraus([u], u), 1.0)

    @given(probabilities)
    @settings(max_examples=30, deadline=None)
    def test_depolarising_identity_fidelity(self, p):
        """One depolarising site against the identity: F_J == p."""
        noisy = QuantumCircuit(1)
        noisy.append(depolarizing(p), [0])
        assert np.isclose(
            jamiolkowski_fidelity_dense(noisy, QuantumCircuit(1)), p,
            atol=1e-9,
        )

    @given(st.integers(0, 2**32 - 1), st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_more_noise_never_helps(self, seed, k):
        """Appending depolarising noise cannot increase fidelity."""
        ideal = QuantumCircuit(2).h(0).cx(0, 1)
        lighter = insert_random_noise(ideal, k, seed=seed)
        heavier = insert_random_noise(lighter, 1, seed=seed + 1)
        f_light = jamiolkowski_fidelity_dense(lighter, ideal)
        f_heavy = jamiolkowski_fidelity_dense(heavier, ideal)
        assert f_heavy <= f_light + 1e-9
