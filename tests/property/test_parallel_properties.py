"""Property tests: parallel slice execution ≡ serial execution.

Random closed qubit-dimension networks (the TDD engine requires dim-2
indices) are planned, sliced hard, and executed three ways — inline,
through :class:`SerialExecutor`, and through a shared 2-worker
:class:`ProcessSliceExecutor` — on all three backends.  Everything must
agree with the direct dense contraction to 1e-9.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import get_backend
from repro.parallel import ProcessSliceExecutor, SerialExecutor
from repro.tensornet import Tensor, TensorNetwork, greedy_plan, slice_plan

BACKENDS = ("tdd", "dense", "einsum")


@st.composite
def closed_qubit_networks(draw):
    """A random closed network with every index of dimension 2."""
    num_tensors = draw(st.integers(min_value=2, max_value=4))
    num_edges = draw(st.integers(min_value=2, max_value=7))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    slots = [[] for _ in range(num_tensors)]
    for e in range(num_edges):
        label = f"e{e}"
        a, b = rng.integers(0, num_tensors, size=2)
        slots[int(a)].append(label)
        slots[int(b)].append(label)
    tensors = []
    for labels in slots:
        shape = (2,) * len(labels)
        data = rng.uniform(-1, 1, size=shape) + 1j * rng.uniform(
            -1, 1, size=shape
        )
        tensors.append(Tensor(data, labels))
    return TensorNetwork(tensors)


@pytest.fixture(scope="module")
def pool():
    """One 2-worker pool shared by every hypothesis example."""
    with ProcessSliceExecutor(jobs=2, chunk_size=2) as executor:
        yield executor


class TestParallelAgreement:
    @settings(max_examples=10, deadline=None)
    @given(closed_qubit_networks())
    def test_process_parallel_matches_serial_on_all_backends(
        self, pool, network
    ):
        reference = network.contract_scalar()
        plan = slice_plan(greedy_plan(network), 2)
        for name in BACKENDS:
            inline = get_backend(name).contract_scalar(network, plan=plan)
            serial = get_backend(
                name, executor=SerialExecutor(chunk_size=3)
            ).contract_scalar(network, plan=plan)
            parallel = get_backend(name, executor=pool).contract_scalar(
                network, plan=plan
            )
            assert np.isclose(inline, reference, atol=1e-9), name
            assert np.isclose(serial, reference, atol=1e-9), name
            assert np.isclose(parallel, reference, atol=1e-9), name
