"""Unit + property tests for the span recorder (repro.trace write side)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import trace
from repro.trace import Span, TraceRecorder, recording
from repro.trace.recorder import _NOOP_SPAN


class TestDisabledTracer:
    def test_span_without_recorder_is_the_noop_singleton(self):
        assert trace.current_recorder() is None
        assert trace.span("anything") is _NOOP_SPAN
        assert trace.span("другое", key="value") is _NOOP_SPAN

    def test_noop_span_supports_the_full_protocol(self):
        with trace.span("x") as sp:
            assert sp.set(a=1) is sp  # chainable, records nothing

    def test_recorder_does_not_leak_out_of_recording(self):
        with recording(TraceRecorder()):
            assert trace.current_recorder() is not None
        assert trace.current_recorder() is None
        assert trace.span("after") is _NOOP_SPAN


class TestRecording:
    def test_spans_nest_by_with_discipline(self):
        recorder = TraceRecorder()
        with recording(recorder):
            with trace.span("outer", kind="root"):
                with trace.span("inner.a"):
                    pass
                with trace.span("inner.b") as b:
                    b.set(hits=3)
        outer, a, b = recorder.spans
        assert [s.name for s in recorder.spans] == [
            "outer", "inner.a", "inner.b"
        ]
        assert outer.parent_id is None
        assert a.parent_id == outer.span_id
        assert b.parent_id == outer.span_id
        assert outer.attributes == {"kind": "root"}
        assert b.attributes == {"hits": 3}

    def test_parents_precede_children_and_ids_are_sequential(self):
        recorder = TraceRecorder()
        with recording(recorder):
            with trace.span("a"):
                with trace.span("b"):
                    with trace.span("c"):
                        pass
        assert [s.span_id for s in recorder.spans] == [1, 2, 3]

    def test_timestamps_are_monotonic_and_contained(self):
        recorder = TraceRecorder()
        with recording(recorder):
            with trace.span("parent"):
                with trace.span("child"):
                    pass
        parent, child = recorder.spans
        assert parent.start_ns <= child.start_ns
        assert child.end_ns <= parent.end_ns
        assert child.duration_ns >= 0

    def test_records_round_trip(self):
        recorder = TraceRecorder()
        with recording(recorder):
            with trace.span("a", n=1):
                pass
        records = recorder.export_records()
        assert Span.from_record(records[0]) == recorder.spans[0]


class TestFold:
    def worker_records(self, *names):
        worker = TraceRecorder()
        with recording(worker):
            with trace.span("slices.worker", slices=len(names)):
                for name in names:
                    with trace.span(name):
                        pass
        return worker.export_records()

    def test_fold_attaches_roots_under_the_open_span(self):
        recorder = TraceRecorder()
        with recording(recorder):
            with trace.span("slices.dispatch") as dispatch:
                recorder.fold(
                    self.worker_records("slices.chunk"),
                    attributes={"worker": 0},
                    align_start_ns=dispatch.span.start_ns,
                )
        dispatch_span = recorder.spans[0]
        worker_root = recorder.spans[1]
        chunk = recorder.spans[2]
        assert worker_root.name == "slices.worker"
        assert worker_root.parent_id == dispatch_span.span_id
        assert worker_root.attributes["worker"] == 0
        # the child keeps its worker-local parent, remapped
        assert chunk.parent_id == worker_root.span_id
        assert chunk.attributes.get("worker") is None

    def test_fold_rebases_the_foreign_clock(self):
        recorder = TraceRecorder()
        with recording(recorder):
            with trace.span("slices.dispatch") as dispatch:
                records = self.worker_records("slices.chunk")
                recorder.fold(
                    records, align_start_ns=dispatch.span.start_ns
                )
                anchor = dispatch.span.start_ns
        folded = recorder.spans[1:]
        assert min(s.start_ns for s in folded) == anchor
        # relative offsets inside the worker trace are preserved
        originals = [Span.from_record(r) for r in records]
        for original, span in zip(originals, folded):
            assert span.duration_ns == original.duration_ns

    def test_fold_keeps_submission_order(self):
        recorder = TraceRecorder()
        with recording(recorder):
            with trace.span("slices.dispatch") as dispatch:
                for index in range(3):
                    recorder.fold(
                        self.worker_records("slices.chunk"),
                        attributes={"worker": index},
                        align_start_ns=dispatch.span.start_ns,
                    )
        workers = [
            s.attributes["worker"]
            for s in recorder.spans
            if s.name == "slices.worker"
        ]
        assert workers == [0, 1, 2]

    def test_fold_of_nothing_is_a_noop(self):
        recorder = TraceRecorder()
        recorder.fold([])
        assert recorder.spans == []


def nesting_programs():
    """Hypothesis strategy: a sequence of push/pop span operations."""
    return st.lists(
        st.one_of(
            st.tuples(st.just("push"), st.sampled_from("abcde")),
            st.tuples(st.just("pop"), st.none()),
        ),
        max_size=30,
    )


class TestProperties:
    @given(nesting_programs())
    @settings(max_examples=50, deadline=None)
    def test_every_span_nests_inside_its_parent(self, program):
        recorder = TraceRecorder()
        stack = []
        with recording(recorder):
            for op, name in program:
                if op == "push":
                    live = trace.span(name)
                    live.__enter__()
                    stack.append(live)
                elif stack:
                    stack.pop().__exit__(None, None, None)
            while stack:
                stack.pop().__exit__(None, None, None)
        by_id = {s.span_id: s for s in recorder.spans}
        for span in recorder.spans:
            assert span.start_ns <= span.end_ns
            if span.parent_id is not None:
                parent = by_id[span.parent_id]
                # parents precede children in the list (pre-order)...
                assert parent.span_id < span.span_id
                # ...and contain them in time
                assert parent.start_ns <= span.start_ns
                assert span.end_ns <= parent.end_ns

    @given(
        st.lists(
            st.lists(st.sampled_from("abc"), min_size=1, max_size=4),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_folded_workers_never_interleave(self, chunks):
        """Fold-in order is submission order: span records of worker k
        all precede those of worker k+1, exactly like the stats merge."""
        worker_batches = []
        for names in chunks:
            worker = TraceRecorder()
            with recording(worker):
                with trace.span("slices.worker"):
                    for name in names:
                        with trace.span(name):
                            pass
            worker_batches.append(worker.export_records())

        recorder = TraceRecorder()
        with recording(recorder):
            with trace.span("slices.dispatch") as dispatch:
                for index, records in enumerate(worker_batches):
                    recorder.fold(
                        records,
                        attributes={"worker": index},
                        align_start_ns=dispatch.span.start_ns,
                    )
        # recover each span's worker by walking up to its folded root
        by_id = {s.span_id: s for s in recorder.spans}

        def worker_of(span):
            while "worker" not in span.attributes:
                if span.parent_id is None:
                    return None
                span = by_id[span.parent_id]
            return span.attributes["worker"]

        owners = [
            worker_of(s) for s in recorder.spans
            if s.name != "slices.dispatch"
        ]
        assert owners == sorted(owners)
        # every worker's span count survived the fold
        for index, records in enumerate(worker_batches):
            assert owners.count(index) == len(records)
