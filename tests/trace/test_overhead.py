"""The disabled tracer must be free: a subprocess pins its cost.

Runs in a fresh interpreter so the measurement is not polluted by the
test session's imports, GC state or an accidentally-left recorder.
"""

import json
import subprocess
import sys

#: Per-call ceiling for a disabled ``trace.span()`` — the no-op path is
#: one contextvar read plus a singleton return.  Generous enough for a
#: loaded CI box, tight enough to catch an accidental Span allocation
#: (which costs an order of magnitude more).
MAX_DISABLED_NS_PER_CALL = 5_000

PROBE = r"""
import json
import timeit

from repro import trace

assert trace.current_recorder() is None

CALLS = 200_000
disabled = min(
    timeit.repeat(
        "span('probe', key=1)",
        globals={"span": trace.span},
        number=CALLS,
        repeat=5,
    )
) / CALLS

# the enabled path, for the report (not asserted here: the enabled
# budget is workload-relative and pinned in benchmarks/bench_service.py)
recorder = trace.TraceRecorder()
with trace.recording(recorder):
    enabled = min(
        timeit.repeat(
            "\nwith span('probe', key=1):\n    pass",
            globals={"span": trace.span},
            number=10_000,
            repeat=5,
        )
    ) / 10_000

print(json.dumps({
    "disabled_ns_per_call": disabled * 1e9,
    "enabled_ns_per_span": enabled * 1e9,
}))
"""


def test_disabled_span_cost_stays_negligible():
    proc = subprocess.run(
        [sys.executable, "-c", PROBE],
        capture_output=True,
        text=True,
        check=True,
    )
    measured = json.loads(proc.stdout)
    assert measured["disabled_ns_per_call"] < MAX_DISABLED_NS_PER_CALL, (
        f"disabled trace.span() costs "
        f"{measured['disabled_ns_per_call']:.0f}ns per call "
        f"(ceiling {MAX_DISABLED_NS_PER_CALL}ns) — did the no-op "
        f"path start allocating?"
    )
    # sanity: the enabled path did record real time, so the probe ran
    assert measured["enabled_ns_per_span"] > 0
