"""Exporter tests: Chrome trace JSON, span trees, phase attribution.

The golden-fixture test pins the Chrome trace of a fully deterministic
traced check (sliced qft-4, einsum backend, order planner) byte-for-byte
modulo timestamps.  Regenerate after an intentional span-vocabulary
change with::

    REPRO_REGEN_FIXTURES=1 PYTHONPATH=src python -m pytest \
        tests/trace/test_trace_export.py -k golden
"""

import json
import os
import pathlib

from repro import trace
from repro.api import CheckRequest, CircuitSpec, Engine, NoiseSpec
from repro.trace import (
    PHASE_BY_SPAN,
    PHASES,
    TraceRecorder,
    chrome_trace,
    phase_seconds,
    recording,
    span_tree,
    tree_phase_seconds,
    tree_records,
)

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def sample_recorder():
    """A hand-built recorder with a worker fold (no real contraction)."""
    recorder = TraceRecorder()
    with recording(recorder):
        with trace.span("engine.request", trace_id="0" * 16):
            with trace.span("request.resolve"):
                with trace.span("circuit.load", source="library"):
                    pass
            with trace.span("session.check", algorithm="alg2"):
                with trace.span("plan.build", planner="order"):
                    pass
                with trace.span("slices.dispatch") as dispatch:
                    worker = TraceRecorder()
                    with recording(worker):
                        with trace.span("slices.worker", slices=2):
                            with trace.span("slices.chunk", slices=2):
                                pass
                    recorder.fold(
                        worker.export_records(),
                        attributes={"worker": 0},
                        align_start_ns=dispatch.span.start_ns,
                    )
    return recorder


class TestChromeTrace:
    def test_complete_events_with_relative_microseconds(self):
        doc = chrome_trace(sample_recorder())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert all(e["ph"] == "X" for e in events)
        assert min(e["ts"] for e in events) == 0.0
        assert {e["name"] for e in events} >= {
            "engine.request", "slices.worker", "slices.chunk",
        }
        json.dumps(doc)  # JSON-serialisable throughout

    def test_worker_spans_land_on_their_own_tid(self):
        events = chrome_trace(sample_recorder())["traceEvents"]
        tid = {e["name"]: e["tid"] for e in events}
        assert tid["engine.request"] == 0
        assert tid["slices.dispatch"] == 0
        assert tid["slices.worker"] == 1  # worker 0 → tid 1
        assert tid["slices.chunk"] == 1  # children inherit the row


class TestSpanTree:
    def test_single_root_tree(self):
        tree = span_tree(sample_recorder())
        assert tree["name"] == "engine.request"
        assert tree["t_ns"] == 0
        names = [child["name"] for child in tree["children"]]
        assert names == ["request.resolve", "session.check"]

    def test_multiple_roots_get_a_synthetic_root(self):
        recorder = TraceRecorder()
        with recording(recorder):
            with trace.span("a"):
                pass
            with trace.span("b"):
                pass
        tree = span_tree(recorder)
        assert tree["name"] == "trace"
        assert [c["name"] for c in tree["children"]] == ["a", "b"]

    def test_attrs_key_only_when_non_empty(self):
        tree = span_tree(sample_recorder())
        assert tree["attrs"] == {"trace_id": "0" * 16}
        resolve = tree["children"][0]
        assert "attrs" not in resolve

    def test_tree_records_round_trips(self):
        tree = span_tree(sample_recorder())
        assert span_tree(tree_records(tree)) == tree


class TestPhaseSeconds:
    def test_every_mapped_phase_is_a_known_label(self):
        assert set(PHASE_BY_SPAN.values()) <= set(PHASES)

    def test_topmost_assigned_ancestor_wins(self):
        recorder = sample_recorder()
        totals = phase_seconds(recorder)
        spans = {s.name: s for s in recorder.spans}
        # slices.dispatch maps to execute and shields the worker spans
        # under it — otherwise concurrent workers would double-count.
        assert totals["execute"] == (
            spans["slices.dispatch"].duration_ns / 1e9
        )
        # request.resolve shields circuit.load the same way
        assert totals["resolve"] == (
            spans["request.resolve"].duration_ns / 1e9
        )
        assert set(totals) <= set(PHASES)

    def test_tree_phase_seconds_matches_the_recorder_view(self):
        recorder = sample_recorder()
        assert tree_phase_seconds(span_tree(recorder)) == phase_seconds(
            recorder
        )

    def test_phase_total_never_exceeds_root_duration(self):
        recorder = sample_recorder()
        root = recorder.spans[0]
        assert sum(phase_seconds(recorder).values()) <= (
            root.duration_ns / 1e9 + 1e-12
        )


def traced_check_tree():
    """The span tree of a deterministic sliced check (fixture workload)."""
    request = CheckRequest(
        ideal=CircuitSpec.from_library("qft", num_qubits=4),
        noise=NoiseSpec(noises=2, seed=0),
        epsilon=0.05,
        config={
            "backend": "einsum",
            "planner": "order",
            "max_intermediate_size": 64,
            "slice_batch": 4,
            "trace": True,
        },
    )
    with Engine() as engine:
        response = engine.check(request)
    assert response.ok
    return response.result.trace


def normalised_chrome_text(tree) -> str:
    """Chrome trace JSON with timestamps zeroed: byte-stable."""
    doc = chrome_trace(tree)
    for event in doc["traceEvents"]:
        event["ts"] = 0.0
        event["dur"] = 0.0
    return json.dumps(doc, sort_keys=True, indent=1) + "\n"


class TestGoldenFixture:
    def test_golden_chrome_trace(self):
        text = normalised_chrome_text(traced_check_tree())
        path = FIXTURES / "chrome_trace.json"
        if os.environ.get("REPRO_REGEN_FIXTURES"):
            path.write_text(text)
        assert text == path.read_text()

    def test_trace_covers_the_check_wall_time(self):
        """The acceptance bar: spans cover ≥95% of the traced wall."""
        tree = traced_check_tree()
        covered = 0
        for child in tree["children"]:
            covered += child["dur_ns"]
        assert tree["dur_ns"] > 0
        assert covered / tree["dur_ns"] >= 0.95
