"""Cross-layer tracing through sessions, the engine and worker pools."""

import json

from repro.api import CheckRequest, CheckResponse, CircuitSpec, Engine, NoiseSpec
from repro.cache.fingerprint import config_fingerprint
from repro.circuits import QuantumCircuit
from repro.core.session import CheckConfig, CheckSession
from repro.noise import depolarizing


def pair():
    ideal = QuantumCircuit(3, "w").h(0).rz(0.3, 0).cx(0, 1).cx(1, 2)
    noisy = ideal.copy()
    noisy.append(depolarizing(0.99), [1])
    return ideal, noisy


def request(**config):
    config.setdefault("backend", "einsum")
    return CheckRequest(
        ideal=CircuitSpec.from_library("qft", num_qubits=3),
        noise=NoiseSpec(noises=2, seed=0),
        epsilon=0.05,
        config=config,
    )


def span_names(tree):
    yield tree["name"]
    for child in tree.get("children", ()):
        yield from span_names(child)


class TestSessionTrace:
    def test_untraced_result_carries_no_trace(self):
        result = CheckSession(CheckConfig(epsilon=0.05)).check(*pair())
        assert result.trace is None
        assert "trace" not in result.to_dict()

    def test_traced_result_carries_the_span_tree(self):
        result = CheckSession(
            CheckConfig(epsilon=0.05, trace=True)
        ).check(*pair())
        names = set(span_names(result.trace))
        assert "session.check" in names
        assert result.to_dict()["trace"] == result.trace

    def test_fidelity_mode_traces_too(self):
        result = CheckSession(
            CheckConfig(epsilon=0.05, trace=True)
        ).run(*pair(), "fidelity")
        assert result.trace is not None

    def test_trace_does_not_change_the_cache_identity(self):
        plain = CheckConfig(epsilon=0.05)
        traced = CheckConfig(epsilon=0.05, trace=True)
        assert config_fingerprint(plain) == config_fingerprint(traced)


class TestWarmHitRegression:
    """A result-cache hit does no work — its stats and trace must say so."""

    def config(self, tmp_path):
        return CheckConfig(
            epsilon=0.05, backend="einsum", trace=True,
            cache=True, cache_dir=str(tmp_path),
        )

    def test_warm_hit_reports_a_cache_span_and_no_work_spans(
        self, tmp_path
    ):
        ideal, noisy = pair()
        cold = CheckSession(self.config(tmp_path)).check(ideal, noisy)
        cold_names = set(span_names(cold.trace))
        assert "session.check" in cold_names
        assert "cache.result.put" in cold_names

        warm = CheckSession(self.config(tmp_path)).check(ideal, noisy)
        assert warm.stats.result_cache_hit == 1
        warm_names = list(span_names(warm.trace))
        # a real lookup span, flagged as a hit...
        gets = [
            node
            for node in self._walk(warm.trace)
            if node["name"] == "cache.result.get"
        ]
        assert len(gets) == 1
        assert gets[0]["attrs"]["hit"] is True
        # ...and zero planning / execution spans
        assert not any(
            name.startswith(("plan.", "slices.", "session.check"))
            for name in warm_names
        )

    def test_warm_hit_zeroes_every_work_counter(self, tmp_path):
        ideal, noisy = pair()
        CheckSession(self.config(tmp_path)).check(ideal, noisy)
        warm = CheckSession(self.config(tmp_path)).check(ideal, noisy)
        stats = warm.stats
        assert stats.planning_seconds == 0.0
        assert stats.plan_trials == 0
        assert stats.cpu_seconds == 0.0
        assert stats.batched_slice_calls == 0
        assert stats.terms_computed == 0
        assert stats.plan_cache_hit == 0

    def _walk(self, tree):
        yield tree
        for child in tree.get("children", ()):
            yield from self._walk(child)


class TestEngineTrace:
    def test_engine_roots_the_trace_with_the_request_id(self):
        with Engine() as engine:
            req = request(trace=True)
            response = engine.check(req)
        tree = response.result.trace
        assert tree["name"] == "engine.request"
        assert tree["attrs"]["trace_id"] == req.trace_id()

    def test_untraced_request_stays_clean(self):
        with Engine() as engine:
            response = engine.check(request())
        assert response.result.trace is None
        assert "trace" not in response.to_dict()

    def test_wire_round_trip_preserves_the_trace(self):
        with Engine() as engine:
            response = engine.check(request(trace=True))
        parsed = CheckResponse.from_json(response.to_json())
        assert parsed.result.trace == response.result.trace

    def test_job_ids_embed_the_trace_id(self):
        with Engine() as engine:
            req = request()
            handle = engine.submit(req)
            assert handle.id.startswith(f"job-{req.trace_id()}-")
            assert engine.result(handle).ok

    def test_trace_id_is_canonical_and_stable(self):
        a = request()
        b = CheckRequest.from_json(a.to_json())
        assert a.trace_id() == b.trace_id()
        assert len(a.trace_id()) == 16
        assert a.trace_id() != request(planner="greedy").trace_id()


class TestWorkerSpanPropagation:
    def test_process_executor_folds_worker_spans(self):
        from repro import trace as T
        from repro.backends import get_backend
        from repro.core.miter import alg2_trace_network
        from repro.parallel import ProcessSliceExecutor

        ideal, noisy = pair()
        network = alg2_trace_network(noisy, ideal)
        with ProcessSliceExecutor(jobs=2) as executor:
            backend = get_backend(
                "einsum", max_intermediate_size=8, executor=executor
            )
            recorder = T.TraceRecorder()
            with T.recording(recorder):
                with T.span("root"):
                    backend.contract_scalar(network)
        tree = T.span_tree(recorder)
        dispatch = next(
            node for node in self._walk(tree)
            if node["name"] == "slices.dispatch"
        )
        workers = [
            child for child in dispatch["children"]
            if child["name"] == "slices.worker"
        ]
        assert workers, "no worker spans folded back"
        # submission order, and every worker span inside the dispatch
        assert [w["attrs"]["worker"] for w in workers] == list(
            range(len(workers))
        )
        for worker in workers:
            assert worker["t_ns"] >= dispatch["t_ns"]
            assert (
                worker["t_ns"] + worker["dur_ns"]
                <= dispatch["t_ns"] + dispatch["dur_ns"]
            )

    def test_untraced_parallel_run_ships_no_records(self):
        from repro.parallel.worker import run_slice_chunk
        from repro.backends import get_backend
        from repro.core.miter import alg2_trace_network
        from repro.tensornet.planner import iter_slice_assignments

        ideal, noisy = pair()
        network = alg2_trace_network(noisy, ideal)
        backend = get_backend("einsum", max_intermediate_size=8)
        plan = backend.plan_for(network)
        assignments = list(iter_slice_assignments(plan))
        _, stats = run_slice_chunk(
            backend.describe(), network, plan, assignments
        )
        assert "trace_spans" not in stats.extra
        _, traced = run_slice_chunk(
            backend.describe(), network, plan, assignments,
            trace_spans=True,
        )
        records = traced.extra["trace_spans"]
        assert records[0]["name"] == "slices.worker"
        json.dumps(records)  # plain picklable/JSON-able dicts

    def _walk(self, tree):
        yield tree
        for child in tree.get("children", ()):
            yield from self._walk(child)
