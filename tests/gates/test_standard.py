"""Unit tests for the standard gate zoo."""

import math

import numpy as np
import pytest

from repro.gates import (
    FIXED_GATES,
    PARAMETRIC_GATES,
    ccx_gate,
    ccz_gate,
    cp_gate,
    cs_gate,
    cswap_gate,
    cx_gate,
    cz_gate,
    h_gate,
    p_gate,
    rx_gate,
    ry_gate,
    rz_gate,
    rzz_gate,
    s_gate,
    sdg_gate,
    swap_gate,
    sx_gate,
    t_gate,
    tdg_gate,
    u_gate,
    unitary_gate,
    x_gate,
    y_gate,
    z_gate,
)
from repro.linalg import allclose_up_to_global_phase


class TestAlgebraicIdentities:
    def test_pauli_squares(self):
        for gate in (x_gate(), y_gate(), z_gate(), h_gate()):
            assert gate.power(2).is_identity()

    def test_y_equals_ixz(self):
        y = y_gate().matrix
        assert np.allclose(y, 1j * x_gate().matrix @ z_gate().matrix)

    def test_s_is_sqrt_z(self):
        assert np.allclose(
            s_gate().matrix @ s_gate().matrix, z_gate().matrix
        )

    def test_t_is_sqrt_s(self):
        assert np.allclose(
            t_gate().matrix @ t_gate().matrix, s_gate().matrix
        )

    def test_sdg_tdg_are_inverses(self):
        assert np.allclose(
            s_gate().matrix @ sdg_gate().matrix, np.eye(2)
        )
        assert np.allclose(
            t_gate().matrix @ tdg_gate().matrix, np.eye(2)
        )

    def test_sx_squared_is_x(self):
        assert np.allclose(
            sx_gate().matrix @ sx_gate().matrix, x_gate().matrix
        )

    def test_h_diagonalises_x(self):
        h = h_gate().matrix
        assert np.allclose(h @ x_gate().matrix @ h, z_gate().matrix)


class TestRotations:
    def test_rz_2pi_is_minus_identity(self):
        assert np.allclose(rz_gate(2 * math.pi).matrix, -np.eye(2))

    def test_rx_pi_is_x_up_to_phase(self):
        assert allclose_up_to_global_phase(
            rx_gate(math.pi).matrix, x_gate().matrix
        )

    def test_ry_pi_is_y_up_to_phase(self):
        assert allclose_up_to_global_phase(
            ry_gate(math.pi).matrix, y_gate().matrix
        )

    def test_p_pi_is_z(self):
        assert np.allclose(p_gate(math.pi).matrix, z_gate().matrix)

    def test_u_reduces_to_h(self):
        assert allclose_up_to_global_phase(
            u_gate(math.pi / 2, 0, math.pi).matrix, h_gate().matrix
        )

    def test_rzz_diagonal(self):
        mat = rzz_gate(0.4).matrix
        assert np.allclose(mat, np.diag(np.diagonal(mat)))


class TestTwoQubitGates:
    def test_cx_action(self):
        cx = cx_gate().matrix
        state = np.zeros(4)
        state[2] = 1  # |10>
        assert np.argmax(np.abs(cx @ state)) == 3  # -> |11>

    def test_cz_symmetric(self):
        assert np.allclose(cz_gate().matrix, cz_gate().matrix.T)

    def test_cp_pi_is_cz(self):
        assert np.allclose(cp_gate(math.pi).matrix, cz_gate().matrix)

    def test_cs_matches_paper(self):
        assert np.allclose(cs_gate().matrix, np.diag([1, 1, 1, 1j]))

    def test_swap_involution(self):
        assert swap_gate().power(2).is_identity()


class TestThreeQubitGates:
    def test_ccx_flips_only_on_11(self):
        mat = ccx_gate().matrix
        assert np.allclose(mat[:6, :6], np.eye(6))
        assert mat[6, 7] == 1 and mat[7, 6] == 1

    def test_ccz_phase(self):
        assert np.allclose(ccz_gate().matrix, np.diag([1] * 7 + [-1]))

    def test_cswap_action(self):
        mat = cswap_gate().matrix
        # |1 01> (index 5) -> |1 10> (index 6)
        assert mat[6, 5] == 1


class TestRegistries:
    def test_fixed_gates_all_unitary(self):
        for name, factory in FIXED_GATES.items():
            assert factory().is_unitary(), name

    def test_parametric_gates_unitary(self):
        for name, factory in PARAMETRIC_GATES.items():
            nargs = {"u": 3}.get(name, 1)
            gate = factory(*([0.37] * nargs))
            assert gate.is_unitary(), name

    def test_unitary_gate_rejects_non_unitary(self):
        with pytest.raises(ValueError):
            unitary_gate(np.array([[1, 0], [0, 2]]))
