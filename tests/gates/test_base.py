"""Unit tests for the Gate value object."""

import numpy as np
import pytest

from repro.gates import Gate, cx_gate, h_gate, s_gate, t_gate, x_gate


class TestGateConstruction:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            Gate("bad", np.ones((2, 3)))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            Gate("bad", np.eye(3))

    def test_matrix_readonly(self):
        gate = h_gate()
        with pytest.raises(ValueError):
            gate.matrix[0, 0] = 5

    def test_num_qubits(self):
        assert h_gate().num_qubits == 1
        assert cx_gate().num_qubits == 2


class TestGateTransforms:
    def test_dagger_matrix(self):
        s = s_gate()
        assert np.allclose(s.dagger().matrix, np.diag([1, -1j]))

    def test_dagger_name_toggles(self):
        s = s_gate()
        assert s.dagger().name == "s_dg"
        assert s.dagger().dagger().name == "s"

    def test_conjugate(self):
        s = s_gate()
        assert np.allclose(s.conjugate().matrix, np.diag([1, -1j]))

    def test_transpose_equals_conj_dagger(self):
        t = t_gate()
        assert np.allclose(
            t.transpose().matrix, t.dagger().conjugate().matrix
        )

    def test_tensor(self):
        xz = x_gate().tensor(h_gate())
        assert np.allclose(xz.matrix, np.kron(x_gate().matrix, h_gate().matrix))

    def test_controlled(self):
        cnot = x_gate().controlled()
        assert np.allclose(cnot.matrix, cx_gate().matrix)

    def test_power(self):
        assert s_gate().power(2).equals(Gate("z", np.diag([1, -1])))

    def test_is_identity(self):
        assert s_gate().power(4).is_identity()
        assert not s_gate().is_identity()

    def test_params_preserved_by_dagger(self):
        from repro.gates import rz_gate

        gate = rz_gate(0.5)
        assert gate.dagger().params == (0.5,)


class TestGateChecks:
    def test_unitarity(self):
        assert h_gate().is_unitary()
        # Non-unitary matrices are allowed (Kraus operators as gates).
        kraus = Gate("k", np.array([[1, 0], [0, 0.5]]))
        assert not kraus.is_unitary()

    def test_equals_no_phase_slack(self):
        z1 = Gate("a", np.diag([1, -1]))
        z2 = Gate("b", -np.diag([1, -1]))
        assert not z1.equals(z2)
