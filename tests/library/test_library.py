"""Unit tests for the benchmark circuit generators."""

import math

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.library import (
    bernstein_vazirani,
    grover,
    mod_mult_7x15,
    multi_controlled_x,
    qft,
    qft_dagger,
    quantum_volume,
    randomized_benchmarking,
)
from repro.linalg import allclose_up_to_global_phase


class TestBernsteinVazirani:
    @pytest.mark.parametrize("n", [2, 4, 6, 9])
    def test_gate_count(self, n):
        assert bernstein_vazirani(n).num_gates == 3 * (n - 1) + 2

    def test_finds_secret(self):
        secret = [1, 0, 1]
        circuit = bernstein_vazirani(4, secret)
        vec = circuit.statevector()
        probs = np.abs(vec) ** 2
        # Data qubits must equal the secret; ancilla is in |->.
        data_of = lambda idx: idx >> 1
        support = {data_of(i) for i in np.nonzero(probs > 1e-9)[0]}
        assert support == {0b101}

    def test_secret_validation(self):
        with pytest.raises(ValueError):
            bernstein_vazirani(3, [1, 2])

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            bernstein_vazirani(1)


class TestQft:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_unitary_is_dft(self, n):
        d = 2**n
        omega = np.exp(2j * np.pi / d)
        dft = np.array(
            [[omega ** (i * j) for j in range(d)] for i in range(d)]
        ) / math.sqrt(d)
        assert np.allclose(qft(n).to_matrix(), dft)

    def test_without_swaps_is_bit_reversed(self):
        n = 3
        full = qft(n).to_matrix()
        noswap = qft(n, with_swaps=False).to_matrix()
        from repro.circuits import permutation_matrix

        reversal = permutation_matrix(list(reversed(range(n))))
        assert np.allclose(reversal @ noswap, full)

    def test_decomposed_matches(self):
        a = qft(3).to_matrix()
        b = qft(3, decompose=True).to_matrix()
        assert allclose_up_to_global_phase(a, b)

    def test_dagger_inverts(self):
        n = 3
        product = qft_dagger(n).to_matrix() @ qft(n).to_matrix()
        assert np.allclose(product, np.eye(2**n), atol=1e-9)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            qft(0)


class TestGrover:
    @pytest.mark.parametrize("n,min_prob", [(3, 0.9), (4, 0.9)])
    def test_success_probability(self, n, min_prob):
        circuit = grover(n)
        vec = circuit.statevector()
        data = n - 1
        marked = 2**data - 1
        prob = sum(
            abs(vec[i]) ** 2
            for i in range(2**n)
            if (i >> 1) == marked
        )
        assert prob > min_prob

    def test_custom_marked_item(self):
        circuit = grover(3, marked=1)
        vec = circuit.statevector()
        prob = sum(
            abs(vec[i]) ** 2 for i in range(8) if (i >> 1) == 1
        )
        assert prob > 0.9

    def test_marked_out_of_range(self):
        with pytest.raises(ValueError):
            grover(3, marked=4)

    def test_iterations_override(self):
        one = grover(3, iterations=1)
        two = grover(3, iterations=2)
        assert two.num_gates > one.num_gates


class TestMultiControlledX:
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 4])
    def test_truth_table(self, k):
        circuit = QuantumCircuit(k + 1)
        multi_controlled_x(circuit, list(range(k)), k)
        mat = circuit.to_matrix()
        dim = 2 ** (k + 1)
        expected = np.eye(dim)
        expected[dim - 2:, dim - 2:] = np.array([[0, 1], [1, 0]])
        assert allclose_up_to_global_phase(mat, expected)


class TestQuantumVolume:
    def test_shape(self):
        circuit = quantum_volume(4, 3, seed=0)
        assert circuit.num_qubits == 4
        assert circuit.name == "qv_n4d3"

    def test_unitary(self):
        circuit = quantum_volume(3, 2, seed=1)
        mat = circuit.to_matrix()
        assert np.allclose(mat @ mat.conj().T, np.eye(8), atol=1e-9)

    def test_deterministic_seed(self):
        a = quantum_volume(3, 3, seed=5).to_matrix()
        b = quantum_volume(3, 3, seed=5).to_matrix()
        assert np.allclose(a, b)

    def test_opaque_blocks(self):
        circuit = quantum_volume(4, 2, seed=0, decompose=False)
        assert all(inst.name == "su4" for inst in circuit)

    def test_default_depth_square(self):
        circuit = quantum_volume(3, seed=0)
        assert circuit.name == "qv_n3d3"

    def test_too_small(self):
        with pytest.raises(ValueError):
            quantum_volume(1)


class TestModMult:
    def test_gate_count_matches_paper(self):
        circuit = mod_mult_7x15()
        assert circuit.num_qubits == 5
        assert circuit.num_gates == 14

    def test_uncontrolled_permutation(self):
        mat = mod_mult_7x15(controlled=False).to_matrix()
        for y in range(1, 15):
            out = int(np.argmax(np.abs(mat[:, y])))
            assert out == (7 * y) % 15

    def test_controlled_acts_only_when_control_set(self):
        mat = mod_mult_7x15().to_matrix()
        # The first gate is H on the control, so compare against the
        # circuit without it: build the controlled part manually.
        circuit = mod_mult_7x15()
        body = QuantumCircuit(5)
        for inst in list(circuit)[1:]:
            body.append(inst.operation, inst.qubits)
        u = body.to_matrix()
        # Control clear (block 0..15): identity.
        assert np.allclose(u[:16, :16], np.eye(16), atol=1e-9)

    def test_controlled_applies_u7(self):
        circuit = mod_mult_7x15()
        body = QuantumCircuit(5)
        for inst in list(circuit)[1:]:
            body.append(inst.operation, inst.qubits)
        u = body.to_matrix()
        u7 = mod_mult_7x15(controlled=False).to_matrix()
        assert np.allclose(u[16:, 16:], u7, atol=1e-9)


class TestRandomizedBenchmarking:
    def test_identity_overall(self):
        circuit = randomized_benchmarking(2, 6, seed=9)
        assert allclose_up_to_global_phase(
            circuit.to_matrix(), np.eye(4)
        )

    def test_gate_count(self):
        assert randomized_benchmarking(2, 6, seed=0).num_gates == 7

    def test_single_qubit(self):
        circuit = randomized_benchmarking(1, 10, seed=3)
        assert allclose_up_to_global_phase(
            circuit.to_matrix(), np.eye(2)
        )

    def test_zero_length(self):
        circuit = randomized_benchmarking(2, 0, seed=0)
        assert circuit.num_gates == 1  # just the recovery

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            randomized_benchmarking(0)
        with pytest.raises(ValueError):
            randomized_benchmarking(2, -1)
